package nvme

import (
	"bytes"
	"testing"

	"repro/internal/sim"
)

func TestWriteZeroesDeallocates(t *testing.T) {
	r := newRig(t)
	r.run(t, func(p *sim.Proc) {
		a := r.enable(t, p)
		q := r.ioQueue(t, p, a, 16)
		buf, _ := r.host.Alloc(PageSize, PageSize)
		s, _ := r.host.Slice(buf, PageSize)
		for i := range s {
			s[i] = 0xAA
		}
		// Write, zero, read back.
		w := SQE{Opcode: IOWrite, NSID: 1, PRP1: buf, CDW10: 50, CDW12: 7}
		if cqe := execIO(t, p, r.host, q, &w); !cqe.OK() {
			t.Fatalf("write status %#x", cqe.Status())
		}
		wz := SQE{Opcode: IOWriteZeroes, NSID: 1, CDW10: 50, CDW12: 7}
		if cqe := execIO(t, p, r.host, q, &wz); !cqe.OK() {
			t.Fatalf("write-zeroes status %#x", cqe.Status())
		}
		rd := SQE{Opcode: IORead, NSID: 1, PRP1: buf, CDW10: 50, CDW12: 7}
		if cqe := execIO(t, p, r.host, q, &rd); !cqe.OK() {
			t.Fatalf("read status %#x", cqe.Status())
		}
		for i, b := range s {
			if b != 0 {
				t.Fatalf("byte %d = %#x after write-zeroes", i, b)
			}
		}
	})
	if r.med.WrittenBlocks() != 0 {
		t.Fatalf("%d blocks still allocated", r.med.WrittenBlocks())
	}
}

func TestWriteZeroesOutOfRange(t *testing.T) {
	r := newRig(t)
	r.run(t, func(p *sim.Proc) {
		a := r.enable(t, p)
		q := r.ioQueue(t, p, a, 16)
		wz := SQE{Opcode: IOWriteZeroes, NSID: 1, CDW10: 0xFFFFFFFF, CDW11: 0xFF, CDW12: 7}
		cqe := execIO(t, p, r.host, q, &wz)
		if sct, sc := cqe.StatusCode(); sct != SCTGeneric || sc != SCLBAOutOfRange {
			t.Fatalf("status (%d,%#x)", sct, sc)
		}
	})
}

func TestCompareMatchAndMismatch(t *testing.T) {
	r := newRig(t)
	r.run(t, func(p *sim.Proc) {
		a := r.enable(t, p)
		q := r.ioQueue(t, p, a, 16)
		buf, _ := r.host.Alloc(PageSize, PageSize)
		s, _ := r.host.Slice(buf, PageSize)
		pattern := bytes.Repeat([]byte{0x3B}, PageSize)
		copy(s, pattern)
		w := SQE{Opcode: IOWrite, NSID: 1, PRP1: buf, CDW10: 80, CDW12: 7}
		if cqe := execIO(t, p, r.host, q, &w); !cqe.OK() {
			t.Fatalf("write status %#x", cqe.Status())
		}
		// Matching compare succeeds.
		cp := SQE{Opcode: IOCompare, NSID: 1, PRP1: buf, CDW10: 80, CDW12: 7}
		if cqe := execIO(t, p, r.host, q, &cp); !cqe.OK() {
			t.Fatalf("compare(match) status %#x", cqe.Status())
		}
		// Corrupt one byte: compare fails with Compare Failure.
		s[100] ^= 0xFF
		cqe := execIO(t, p, r.host, q, &cp)
		if sct, sc := cqe.StatusCode(); sct != SCTMediaError || sc != SCCompareFailure {
			t.Fatalf("compare(mismatch) status (%d,%#x)", sct, sc)
		}
	})
}

func TestDSMDeallocateRanges(t *testing.T) {
	r := newRig(t)
	r.run(t, func(p *sim.Proc) {
		a := r.enable(t, p)
		q := r.ioQueue(t, p, a, 16)
		data, _ := r.host.Alloc(PageSize, PageSize)
		// Fill blocks 0..15 and 100..107.
		w1 := SQE{Opcode: IOWrite, NSID: 1, PRP1: data, CDW10: 0, CDW12: 7}
		w2 := SQE{Opcode: IOWrite, NSID: 1, PRP1: data, CDW10: 8, CDW12: 7}
		w3 := SQE{Opcode: IOWrite, NSID: 1, PRP1: data, CDW10: 100, CDW12: 7}
		s, _ := r.host.Slice(data, PageSize)
		for i := range s {
			s[i] = 1
		}
		for _, cmd := range []*SQE{&w1, &w2, &w3} {
			if cqe := execIO(t, p, r.host, q, cmd); !cqe.OK() {
				t.Fatalf("setup write status %#x", cqe.Status())
			}
		}
		if r.med.WrittenBlocks() != 24 {
			t.Fatalf("setup blocks %d, want 24", r.med.WrittenBlocks())
		}
		// DSM with two ranges: [0,16) and [100,108).
		listAddr, _ := r.host.Alloc(PageSize, PageSize)
		list, _ := r.host.Slice(listAddr, 2*DSMRangeSize)
		putLE32(list[4:], 16)
		putLE64(list[8:], 0)
		putLE32(list[DSMRangeSize+4:], 8)
		putLE64(list[DSMRangeSize+8:], 100)
		dsm := SQE{Opcode: IODSM, NSID: 1, PRP1: listAddr,
			CDW10: 1 /* NR=2 (0-based) */, CDW11: DSMAttrDeallocate}
		if cqe := execIO(t, p, r.host, q, &dsm); !cqe.OK() {
			t.Fatalf("dsm status %#x", cqe.Status())
		}
	})
	if r.med.WrittenBlocks() != 0 {
		t.Fatalf("%d blocks left after DSM", r.med.WrittenBlocks())
	}
	if r.med.Trims != 2 {
		t.Fatalf("trims %d, want 2", r.med.Trims)
	}
}

func TestDSMWithoutDeallocateIsNoop(t *testing.T) {
	r := newRig(t)
	r.run(t, func(p *sim.Proc) {
		a := r.enable(t, p)
		q := r.ioQueue(t, p, a, 16)
		data, _ := r.host.Alloc(PageSize, PageSize)
		w := SQE{Opcode: IOWrite, NSID: 1, PRP1: data, CDW10: 0, CDW12: 7}
		if cqe := execIO(t, p, r.host, q, &w); !cqe.OK() {
			t.Fatal("write failed")
		}
		listAddr, _ := r.host.Alloc(PageSize, PageSize)
		list, _ := r.host.Slice(listAddr, DSMRangeSize)
		putLE32(list[4:], 8)
		putLE64(list[8:], 0)
		dsm := SQE{Opcode: IODSM, NSID: 1, PRP1: listAddr, CDW10: 0, CDW11: 0}
		if cqe := execIO(t, p, r.host, q, &dsm); !cqe.OK() {
			t.Fatalf("dsm status %#x", cqe.Status())
		}
	})
	if r.med.WrittenBlocks() != 8 {
		t.Fatalf("hint-only DSM deallocated blocks: %d left", r.med.WrittenBlocks())
	}
}

func TestDSMBadRange(t *testing.T) {
	r := newRig(t)
	r.run(t, func(p *sim.Proc) {
		a := r.enable(t, p)
		q := r.ioQueue(t, p, a, 16)
		listAddr, _ := r.host.Alloc(PageSize, PageSize)
		list, _ := r.host.Slice(listAddr, DSMRangeSize)
		putLE32(list[4:], 8)
		putLE64(list[8:], 1<<62) // far out of range
		dsm := SQE{Opcode: IODSM, NSID: 1, PRP1: listAddr, CDW10: 0, CDW11: DSMAttrDeallocate}
		cqe := execIO(t, p, r.host, q, &dsm)
		if sct, sc := cqe.StatusCode(); sct != SCTGeneric || sc != SCLBAOutOfRange {
			t.Fatalf("status (%d,%#x)", sct, sc)
		}
	})
}

func putLE32(b []byte, v uint32) {
	for i := 0; i < 4; i++ {
		b[i] = byte(v >> (8 * i))
	}
}
