package nvme

import (
	"testing"

	"repro/internal/sim"
)

// TestRoundRobinArbitrationFairness floods two queues and checks the
// controller alternates between them — no queue starves, matching the
// lock-free parallel operation the paper relies on when many hosts share
// the device.
func TestRoundRobinArbitrationFairness(t *testing.T) {
	r := newRig(t)
	var order []uint16
	r.run(t, func(p *sim.Proc) {
		a := r.enable(t, p)
		q1 := r.ioQueue(t, p, a, 64)
		// Second pair.
		sq2, _ := r.host.Alloc(uint64(64*SQESize), PageSize)
		cq2, _ := r.host.Alloc(uint64(64*CQESize), PageSize)
		if err := a.CreateQueuePair(p, 2, 64, sq2, cq2, false, 0); err != nil {
			t.Fatal(err)
		}
		q2 := NewQueueView(2, 64, sq2, cq2,
			rigBARBase+SQTailDoorbell(2, a.DSTRD), rigBARBase+CQHeadDoorbell(2, a.DSTRD))

		buf, _ := r.host.Alloc(PageSize, PageSize)
		// Enqueue 8 commands in each SQ without ringing doorbells yet,
		// then ring both, so the arbiter sees both queues full at once.
		const per = 8
		for i := 0; i < per; i++ {
			for _, q := range []*QueueView{q1, q2} {
				cmd := SQE{Opcode: IORead, NSID: 1, PRP1: buf, CDW10: uint32(i * 8), CDW12: 7}
				cmd.CID = q.NextCID()
				if err := q.Submit(p, r.host, &cmd); err != nil {
					t.Fatal(err)
				}
			}
		}
		// Collect completion order by SQID.
		got := 0
		for got < 2*per {
			for _, q := range []*QueueView{q1, q2} {
				cqe, ok, err := q.Poll(p, r.host)
				if err != nil {
					t.Fatal(err)
				}
				if ok {
					order = append(order, cqe.SQID)
					got++
				}
			}
			p.Sleep(200)
		}
	})
	// Fairness: within any window of 4 completions, both queues appear.
	for i := 0; i+4 <= len(order); i++ {
		seen := map[uint16]bool{}
		for _, id := range order[i : i+4] {
			seen[id] = true
		}
		if len(seen) < 2 {
			t.Fatalf("window %d starved a queue: %v", i, order)
		}
	}
}

// TestManyQueuesOneCommandEach creates the full 31 I/O queue pairs on one
// host and runs one command through each — the controller-side half of
// the paper's 31-host claim, without cluster overhead.
func TestManyQueuesOneCommandEach(t *testing.T) {
	r := newRig(t)
	r.run(t, func(p *sim.Proc) {
		a := r.enable(t, p)
		buf, _ := r.host.Alloc(PageSize, PageSize)
		for qid := uint16(1); qid <= 31; qid++ {
			sq, err := r.host.Alloc(uint64(16*SQESize), PageSize)
			if err != nil {
				t.Fatal(err)
			}
			cq, err := r.host.Alloc(uint64(16*CQESize), PageSize)
			if err != nil {
				t.Fatal(err)
			}
			if err := a.CreateQueuePair(p, qid, 16, sq, cq, false, 0); err != nil {
				t.Fatalf("qid %d: %v", qid, err)
			}
			q := NewQueueView(qid, 16, sq, cq,
				rigBARBase+SQTailDoorbell(qid, a.DSTRD), rigBARBase+CQHeadDoorbell(qid, a.DSTRD))
			rd := SQE{Opcode: IORead, NSID: 1, PRP1: buf, CDW10: uint32(qid) * 8, CDW12: 7}
			if cqe := execIO(t, p, r.host, q, &rd); !cqe.OK() {
				t.Fatalf("qid %d status %#x", qid, cqe.Status())
			}
		}
		// The 32nd I/O pair must be rejected: CAP allows 31 + admin.
		sq, _ := r.host.Alloc(uint64(16*SQESize), PageSize)
		cq, _ := r.host.Alloc(uint64(16*CQESize), PageSize)
		if err := a.CreateQueuePair(p, 32, 16, sq, cq, false, 0); err == nil {
			t.Fatal("33rd queue pair accepted")
		}
	})
	if r.ctrl.Stats.ReadCmds != 31 {
		t.Fatalf("reads %d, want 31", r.ctrl.Stats.ReadCmds)
	}
}
