package nvme

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestSMARTLogRoundTrip(t *testing.T) {
	s := SMARTLog{
		TemperatureK: 313, UnitsRead: 100, UnitsWritten: 200,
		HostReadCmds: 7, HostWriteCmds: 9, PowerCycles: 1,
		UnsafeShutdowns: 2, MediaErrors: 3,
	}
	got := UnmarshalSMARTLog(MarshalSMARTLog(s))
	if got != s {
		t.Fatalf("round trip: %+v != %+v", got, s)
	}
}

func TestPropSMARTLogRoundTrip(t *testing.T) {
	f := func(temp uint16, a, b, c, d, e, g, h uint64) bool {
		s := SMARTLog{TemperatureK: temp, UnitsRead: a, UnitsWritten: b,
			HostReadCmds: c, HostWriteCmds: d, PowerCycles: e,
			UnsafeShutdowns: g, MediaErrors: h}
		return UnmarshalSMARTLog(MarshalSMARTLog(s)) == s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSMARTReflectsLiveCounters(t *testing.T) {
	r := newRig(t)
	r.run(t, func(p *sim.Proc) {
		a := r.enable(t, p)
		q := r.ioQueue(t, p, a, 16)
		buf, _ := r.host.Alloc(PageSize, PageSize)
		// 3 writes, 2 reads, 1 injected media error.
		for i := 0; i < 3; i++ {
			w := SQE{Opcode: IOWrite, NSID: 1, PRP1: buf, CDW10: uint32(i * 8), CDW12: 7}
			if cqe := execIO(t, p, r.host, q, &w); !cqe.OK() {
				t.Fatal("write failed")
			}
		}
		for i := 0; i < 2; i++ {
			rd := SQE{Opcode: IORead, NSID: 1, PRP1: buf, CDW10: uint32(i * 8), CDW12: 7}
			if cqe := execIO(t, p, r.host, q, &rd); !cqe.OK() {
				t.Fatal("read failed")
			}
		}
		r.med.InjectReadErrors(1)
		bad := SQE{Opcode: IORead, NSID: 1, PRP1: buf, CDW10: 0, CDW12: 7}
		if cqe := execIO(t, p, r.host, q, &bad); cqe.OK() {
			t.Fatal("injected error vanished")
		}

		smart, err := a.SMART(p)
		if err != nil {
			t.Fatal(err)
		}
		if smart.HostWriteCmds != 3 || smart.HostReadCmds != 2 {
			t.Errorf("host cmd counts r=%d w=%d", smart.HostReadCmds, smart.HostWriteCmds)
		}
		if smart.MediaErrors != 1 {
			t.Errorf("media errors %d, want 1", smart.MediaErrors)
		}
		// 3 writes x 8 blocks x 512 B = 24 units of 512 B.
		if smart.UnitsWritten != 24 {
			t.Errorf("units written %d, want 24", smart.UnitsWritten)
		}
		if smart.TemperatureK == 0 {
			t.Error("no temperature reported")
		}
	})
}

func TestVolatileWriteCacheFeature(t *testing.T) {
	r := newRig(t)
	r.run(t, func(p *sim.Proc) {
		a := r.enable(t, p)
		on, err := a.SetVolatileWriteCache(p, true)
		if err != nil {
			t.Fatal(err)
		}
		if !on {
			t.Error("VWC did not report enabled after set")
		}
		on, err = a.SetVolatileWriteCache(p, false)
		if err != nil {
			t.Fatal(err)
		}
		if on {
			t.Error("VWC did not report disabled after clear")
		}
	})
}
