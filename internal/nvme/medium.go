package nvme

import (
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/sim"
)

// Media failure sentinels, injectable for fault testing.
var (
	ErrMediaRead  = errors.New("nvme: unrecovered read error")
	ErrMediaWrite = errors.New("nvme: write fault")
)

// Medium is the storage behind a controller. Read/Write block the calling
// simulation process for the medium's access time and move real bytes.
type Medium interface {
	// BlockSize returns the logical block size in bytes.
	BlockSize() int
	// Blocks returns the capacity in logical blocks.
	Blocks() uint64
	// Read fills buf (len = nblk*BlockSize) from blocks [lba, lba+nblk).
	Read(p *sim.Proc, lba uint64, nblk int, buf []byte) error
	// Write stores data (len = nblk*BlockSize) to blocks [lba, lba+nblk).
	Write(p *sim.Proc, lba uint64, nblk int, data []byte) error
	// Flush persists outstanding writes.
	Flush(p *sim.Proc) error
	// Trim deallocates blocks [lba, lba+nblk); they read back as zeros.
	Trim(p *sim.Proc, lba uint64, nblk int) error
}

// FlashParams model an Optane-class device: low, very consistent latency.
// The paper uses an Intel Optane P4800X specifically because its
// consistency keeps the boxplots tight.
type FlashParams struct {
	// ReadBaseNs / WriteBaseNs are median media access times for the first
	// block of a command.
	ReadBaseNs  int64
	WriteBaseNs int64
	// JitterNs bounds the uniform jitter added per command.
	JitterNs int64
	// TailProb is the probability of a tail event adding TailNs (models
	// the long whisker up to p99).
	TailProb float64
	TailNs   int64
	// PerBlockNs is the incremental cost per additional block.
	PerBlockNs int64
	// Channels bounds internal command concurrency.
	Channels int
	// FlushNs is the cost of a flush.
	FlushNs int64
	// TrimNs is the cost of a deallocate command (per range).
	TrimNs int64
}

// DefaultFlashParams returns the Optane P4800X-class calibration.
func DefaultFlashParams() FlashParams {
	return FlashParams{
		ReadBaseNs:  8500,
		WriteBaseNs: 8800,
		JitterNs:    500,
		TailProb:    0.01,
		TailNs:      4000,
		PerBlockNs:  120,
		Channels:    7,
		FlushNs:     2000,
		TrimNs:      3000,
	}
}

// FlashMedium is a deterministic (seeded) flash model with per-block
// backing storage, bounded channel parallelism and an Optane-like latency
// distribution.
type FlashMedium struct {
	params    FlashParams
	blockSize int
	blocks    uint64
	data      map[uint64][]byte // sparse: lba -> block contents
	chans     *sim.Semaphore
	rng       *rand.Rand

	// Reads / Writes / Flushes / Trims count operations for tests and
	// tools; BlocksRead / BlocksWritten count logical blocks moved.
	Reads, Writes, Flushes, Trims uint64
	BlocksRead, BlocksWritten     uint64

	failReads, failWrites int
	stallNs               int64
}

// NewFlashMedium creates a flash medium with the given geometry. blockSize
// must be a power of two; params zero-fields are filled from
// DefaultFlashParams.
func NewFlashMedium(k *sim.Kernel, blockSize int, blocks uint64, params FlashParams, seed int64) *FlashMedium {
	d := DefaultFlashParams()
	if params.ReadBaseNs == 0 {
		params.ReadBaseNs = d.ReadBaseNs
	}
	if params.WriteBaseNs == 0 {
		params.WriteBaseNs = d.WriteBaseNs
	}
	if params.JitterNs == 0 {
		params.JitterNs = d.JitterNs
	}
	if params.TailProb == 0 {
		params.TailProb = d.TailProb
	}
	if params.TailNs == 0 {
		params.TailNs = d.TailNs
	}
	if params.PerBlockNs == 0 {
		params.PerBlockNs = d.PerBlockNs
	}
	if params.Channels == 0 {
		params.Channels = d.Channels
	}
	if params.FlushNs == 0 {
		params.FlushNs = d.FlushNs
	}
	if params.TrimNs == 0 {
		params.TrimNs = d.TrimNs
	}
	return &FlashMedium{
		params:    params,
		blockSize: blockSize,
		blocks:    blocks,
		data:      make(map[uint64][]byte),
		chans:     sim.NewSemaphore(k, params.Channels),
		rng:       rand.New(rand.NewSource(seed)),
	}
}

// BlockSize implements Medium.
func (f *FlashMedium) BlockSize() int { return f.blockSize }

// Blocks implements Medium.
func (f *FlashMedium) Blocks() uint64 { return f.blocks }

// Params returns the latency model in use.
func (f *FlashMedium) Params() FlashParams { return f.params }

func (f *FlashMedium) check(lba uint64, nblk int, buf []byte) error {
	if nblk <= 0 {
		return fmt.Errorf("nvme: medium access with nblk=%d", nblk)
	}
	if lba+uint64(nblk) < lba || lba+uint64(nblk) > f.blocks {
		return fmt.Errorf("nvme: LBA out of range: %d+%d of %d", lba, nblk, f.blocks)
	}
	if len(buf) != nblk*f.blockSize {
		return fmt.Errorf("nvme: buffer %d bytes for %d blocks of %d", len(buf), nblk, f.blockSize)
	}
	return nil
}

func (f *FlashMedium) latency(base int64, nblk int) sim.Duration {
	lat := base + int64(nblk-1)*f.params.PerBlockNs + f.rng.Int63n(f.params.JitterNs+1)
	if f.rng.Float64() < f.params.TailProb {
		lat += f.rng.Int63n(f.params.TailNs + 1)
	}
	return lat
}

// InjectReadErrors makes the next n reads fail with ErrMediaRead after
// their normal access time, for fault-path testing.
func (f *FlashMedium) InjectReadErrors(n int) { f.failReads += n }

// InjectWriteErrors makes the next n writes fail with ErrMediaWrite.
func (f *FlashMedium) InjectWriteErrors(n int) { f.failWrites += n }

// InjectStall makes the next read or write take an extra d nanoseconds,
// for driver-timeout testing.
func (f *FlashMedium) InjectStall(d int64) { f.stallNs = d }

func (f *FlashMedium) takeStall() int64 {
	d := f.stallNs
	f.stallNs = 0
	return d
}

// Read implements Medium. Unwritten blocks read back as zeros.
func (f *FlashMedium) Read(p *sim.Proc, lba uint64, nblk int, buf []byte) error {
	if err := f.check(lba, nblk, buf); err != nil {
		return err
	}
	p.Acquire(f.chans)
	defer f.chans.Release()
	p.Sleep(f.latency(f.params.ReadBaseNs, nblk) + f.takeStall())
	if f.failReads > 0 {
		f.failReads--
		return ErrMediaRead
	}
	for i := 0; i < nblk; i++ {
		dst := buf[i*f.blockSize : (i+1)*f.blockSize]
		if blk, ok := f.data[lba+uint64(i)]; ok {
			copy(dst, blk)
		} else {
			for j := range dst {
				dst[j] = 0
			}
		}
	}
	f.Reads++
	f.BlocksRead += uint64(nblk)
	return nil
}

// Write implements Medium.
func (f *FlashMedium) Write(p *sim.Proc, lba uint64, nblk int, data []byte) error {
	if err := f.check(lba, nblk, data); err != nil {
		return err
	}
	p.Acquire(f.chans)
	defer f.chans.Release()
	p.Sleep(f.latency(f.params.WriteBaseNs, nblk) + f.takeStall())
	if f.failWrites > 0 {
		f.failWrites--
		return ErrMediaWrite
	}
	for i := 0; i < nblk; i++ {
		blk := make([]byte, f.blockSize)
		copy(blk, data[i*f.blockSize:(i+1)*f.blockSize])
		f.data[lba+uint64(i)] = blk
	}
	f.Writes++
	f.BlocksWritten += uint64(nblk)
	return nil
}

// Flush implements Medium.
func (f *FlashMedium) Flush(p *sim.Proc) error {
	p.Sleep(f.params.FlushNs)
	f.Flushes++
	return nil
}

// Trim implements Medium: deallocated blocks are dropped from the sparse
// store and read back as zeros.
func (f *FlashMedium) Trim(p *sim.Proc, lba uint64, nblk int) error {
	if nblk <= 0 || lba+uint64(nblk) < lba || lba+uint64(nblk) > f.blocks {
		return fmt.Errorf("nvme: trim out of range: %d+%d of %d", lba, nblk, f.blocks)
	}
	p.Sleep(f.params.TrimNs)
	for i := 0; i < nblk; i++ {
		delete(f.data, lba+uint64(i))
	}
	f.Trims++
	return nil
}

// WrittenBlocks returns how many distinct blocks hold data; tests use it to
// check write coverage without scanning the capacity.
func (f *FlashMedium) WrittenBlocks() int { return len(f.data) }
