package nvme

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestQueueViewFullDetection(t *testing.T) {
	r := newRig(t)
	r.run(t, func(p *sim.Proc) {
		a := r.enable(t, p)
		const depth = 4
		q := r.ioQueue(t, p, a, depth)
		buf, _ := r.host.Alloc(PageSize, PageSize)
		// A queue of depth N holds N-1 outstanding commands.
		for i := 0; i < depth-1; i++ {
			cmd := SQE{Opcode: IORead, NSID: 1, PRP1: buf, CDW10: uint32(i * 8), CDW12: 7}
			cmd.CID = q.NextCID()
			if err := q.Submit(p, r.host, &cmd); err != nil {
				t.Fatalf("submit %d: %v", i, err)
			}
		}
		if !q.Full() {
			t.Fatal("queue not full after depth-1 submissions")
		}
		cmd := SQE{Opcode: IORead, NSID: 1, PRP1: buf, CDW12: 7}
		cmd.CID = q.NextCID()
		if err := q.Submit(p, r.host, &cmd); err == nil {
			t.Fatal("submit to full queue succeeded")
		}
		// Drain; Full clears.
		for q.Inflight() > 0 {
			if _, ok, err := q.Poll(p, r.host); err != nil {
				t.Fatal(err)
			} else if !ok {
				p.Sleep(200)
			}
		}
		if q.Full() {
			t.Fatal("queue still full after drain")
		}
	})
}

func TestQueueViewLockingSerializesSubmitters(t *testing.T) {
	// With locking enabled, many concurrent submitters through one view
	// must produce exactly one completion per submission, no lost or
	// duplicated slots, across queue wraps.
	r := newRig(t)
	const workers = 6
	const perWorker = 10
	completed := 0
	r.run(t, func(p *sim.Proc) {
		a := r.enable(t, p)
		q := r.ioQueue(t, p, a, 8) // small: forces wraps and Full waits
		q.EnableLocking(r.k)
		buf, _ := r.host.Alloc(PageSize, PageSize)
		done := make([]*sim.Event, 0, workers)
		// One poller distributing completions, woken by CQE DMA arrivals
		// so the simulation can drain when idle.
		pending := map[uint16]*sim.Event{}
		cqSig := sim.NewSignal(r.k)
		rng := q.CQRange()
		r.host.Watch(rng, func(pcieAddr uint64, n int) { cqSig.Set() })
		r.k.Spawn("poller", func(pp *sim.Proc) {
			for {
				cqe, ok, err := q.Poll(pp, r.host)
				if err != nil {
					return
				}
				if !ok {
					pp.WaitSignal(cqSig)
					continue
				}
				if ev := pending[cqe.CID]; ev != nil {
					delete(pending, cqe.CID)
					ev.Trigger(cqe.Status())
				}
			}
		})
		for w := 0; w < workers; w++ {
			fin := sim.NewEvent(r.k)
			done = append(done, fin)
			r.k.Spawn("submitter", func(sp *sim.Proc) {
				defer fin.Trigger(nil)
				for i := 0; i < perWorker; i++ {
					cmd := SQE{Opcode: IORead, NSID: 1, PRP1: buf, CDW10: uint32(i * 8), CDW12: 7}
					cmd.CID = q.NextCID()
					ev := sim.NewEvent(r.k)
					pending[cmd.CID] = ev
					// Retry while full: the semantics a driver implements
					// above the raw view.
					for {
						if err := q.Submit(sp, r.host, &cmd); err == nil {
							break
						}
						sp.Sleep(2000)
					}
					sp.Wait(ev)
					if st := ev.Payload().(uint16); st != StatusOK {
						t.Errorf("status %#x", st)
						return
					}
					completed++
				}
			})
		}
		for _, fin := range done {
			p.Wait(fin)
		}
	})
	if completed != workers*perWorker {
		t.Fatalf("completed %d, want %d", completed, workers*perWorker)
	}
	if r.ctrl.Stats.ReadCmds != uint64(workers*perWorker) {
		t.Fatalf("controller reads %d", r.ctrl.Stats.ReadCmds)
	}
}

// Property: NextCID never returns the same CID twice within a window
// smaller than the CID space.
func TestPropNextCIDUnique(t *testing.T) {
	f := func(n uint16) bool {
		q := NewQueueView(1, 64, 0, 0, 0, 0)
		count := int(n%1000) + 2
		seen := make(map[uint16]bool, count)
		for i := 0; i < count; i++ {
			cid := q.NextCID()
			if seen[cid] {
				return false
			}
			seen[cid] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
