package nvme

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/memory"
	"repro/internal/pcie"
	"repro/internal/sim"
)

// rig is a single host with a directly attached controller — the "local
// NVMe" configuration.
type rig struct {
	k    *sim.Kernel
	dom  *pcie.Domain
	host *pcie.HostPort
	ctrl *Controller
	med  *FlashMedium
}

const (
	rigBARBase = 0xF000_0000
	rigBARSize = 0x4000
)

func newRig(t *testing.T) *rig {
	t.Helper()
	k := sim.NewKernel()
	dom := pcie.NewDomain("host0", k, pcie.LinkParams{})
	rc := dom.AddNode(pcie.RootComplex, "rc")
	ep := dom.AddNode(pcie.Endpoint, "nvme")
	if err := dom.Connect(rc, ep); err != nil {
		t.Fatal(err)
	}
	mem := memory.New(0x100000, 8<<20)
	host, err := pcie.NewHostPort(dom, rc, mem, pcie.CPUParams{})
	if err != nil {
		t.Fatal(err)
	}
	med := NewFlashMedium(k, 512, 1<<20, FlashParams{}, 42)
	ctrl, err := New("nvme0", dom, ep, pcie.Range{Base: rigBARBase, Size: rigBARSize}, med, Params{})
	if err != nil {
		t.Fatal(err)
	}
	return &rig{k: k, dom: dom, host: host, ctrl: ctrl, med: med}
}

// run executes fn as a simulated process and drains the kernel.
func (r *rig) run(t *testing.T, fn func(p *sim.Proc)) {
	t.Helper()
	failed := false
	r.k.Spawn("test", func(p *sim.Proc) {
		defer func() {
			if rec := recover(); rec != nil {
				if _, ok := rec.(sim.Stopped); ok {
					panic(rec)
				}
				failed = true
				t.Errorf("panic in sim proc: %v", rec)
			}
		}()
		fn(p)
	})
	r.k.RunAll()
	r.k.Shutdown()
	if failed {
		t.FailNow()
	}
}

// enable brings the controller up and returns the admin client.
func (r *rig) enable(t *testing.T, p *sim.Proc) *AdminClient {
	t.Helper()
	a := NewAdminClient(r.host, rigBARBase)
	if err := a.Enable(p, 32); err != nil {
		t.Fatalf("enable: %v", err)
	}
	return a
}

// ioQueue creates I/O queue pair 1 in local memory and returns its view.
func (r *rig) ioQueue(t *testing.T, p *sim.Proc, a *AdminClient, depth int) *QueueView {
	t.Helper()
	sq, err := r.host.Alloc(uint64(depth*SQESize), PageSize)
	if err != nil {
		t.Fatal(err)
	}
	cq, err := r.host.Alloc(uint64(depth*CQESize), PageSize)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.CreateQueuePair(p, 1, depth, sq, cq, false, 0); err != nil {
		t.Fatalf("create qp: %v", err)
	}
	return NewQueueView(1, depth, sq, cq,
		rigBARBase+SQTailDoorbell(1, a.DSTRD), rigBARBase+CQHeadDoorbell(1, a.DSTRD))
}

// execIO submits one I/O command and polls until completion.
func execIO(t *testing.T, p *sim.Proc, h *pcie.HostPort, q *QueueView, cmd *SQE) CQE {
	t.Helper()
	cmd.CID = q.NextCID()
	if err := q.Submit(p, h, cmd); err != nil {
		t.Fatalf("submit: %v", err)
	}
	deadline := p.Now() + 100*sim.Millisecond
	for {
		cqe, ok, err := q.Poll(p, h)
		if err != nil {
			t.Fatalf("poll: %v", err)
		}
		if ok {
			return cqe
		}
		if p.Now() > deadline {
			t.Fatalf("I/O timeout CID %d", cmd.CID)
		}
		p.Sleep(200)
	}
}

func TestControllerEnableSetsReady(t *testing.T) {
	r := newRig(t)
	r.run(t, func(p *sim.Proc) {
		a := r.enable(t, p)
		if !r.ctrl.Ready() {
			t.Error("controller not ready after Enable")
		}
		if a.MQES != r.ctrl.Params().MQES {
			t.Errorf("MQES %d, want %d", a.MQES, r.ctrl.Params().MQES)
		}
	})
}

func TestRegisterReadback(t *testing.T) {
	r := newRig(t)
	r.run(t, func(p *sim.Proc) {
		a := NewAdminClient(r.host, rigBARBase)
		vs, err := a.Reg32(p, RegVS)
		if err != nil {
			t.Fatal(err)
		}
		if vs != Version {
			t.Errorf("VS = %#x, want %#x", vs, Version)
		}
		capReg, err := a.Reg64(p, RegCAP)
		if err != nil {
			t.Fatal(err)
		}
		if capReg&0xFFFF != uint64(r.ctrl.Params().MQES) {
			t.Errorf("CAP.MQES = %d", capReg&0xFFFF)
		}
		if capReg>>37&1 != 1 {
			t.Error("CAP.CSS NVM bit clear")
		}
	})
}

func TestDisableResets(t *testing.T) {
	r := newRig(t)
	r.run(t, func(p *sim.Proc) {
		a := r.enable(t, p)
		if err := a.Disable(p); err != nil {
			t.Fatal(err)
		}
		p.Sleep(sim.Microsecond)
		if r.ctrl.Ready() {
			t.Error("controller still ready after disable")
		}
		// Re-enable must work.
		if err := a.Enable(p, 16); err != nil {
			t.Fatalf("re-enable: %v", err)
		}
	})
}

func TestIdentifyController(t *testing.T) {
	r := newRig(t)
	r.run(t, func(p *sim.Proc) {
		a := r.enable(t, p)
		id, err := a.Identify(p)
		if err != nil {
			t.Fatal(err)
		}
		if id.Model != "Simulated Optane P4800X" {
			t.Errorf("model %q", id.Model)
		}
		if id.NN != 1 {
			t.Errorf("NN = %d", id.NN)
		}
	})
}

func TestIdentifyNamespace(t *testing.T) {
	r := newRig(t)
	r.run(t, func(p *sim.Proc) {
		a := r.enable(t, p)
		ns, err := a.IdentifyNamespace(p, 1)
		if err != nil {
			t.Fatal(err)
		}
		if ns.NSZE != r.med.Blocks() {
			t.Errorf("NSZE = %d, want %d", ns.NSZE, r.med.Blocks())
		}
		if ns.LBADS != 9 {
			t.Errorf("LBADS = %d, want 9", ns.LBADS)
		}
		// Invalid NSID is rejected.
		if _, err := a.IdentifyNamespace(p, 7); !errors.Is(err, ErrCommandFailed) {
			t.Errorf("bad NSID: %v", err)
		}
	})
}

func TestSetNumQueues(t *testing.T) {
	r := newRig(t)
	r.run(t, func(p *sim.Proc) {
		a := r.enable(t, p)
		nsq, ncq, err := a.SetNumQueues(p, 64)
		if err != nil {
			t.Fatal(err)
		}
		want := r.ctrl.Params().MaxQueuePairs - 1
		if nsq != want || ncq != want {
			t.Errorf("granted (%d,%d), want (%d,%d)", nsq, ncq, want, want)
		}
	})
}

func TestIOReadWriteRoundTrip(t *testing.T) {
	r := newRig(t)
	r.run(t, func(p *sim.Proc) {
		a := r.enable(t, p)
		q := r.ioQueue(t, p, a, 64)
		dataBuf, _ := r.host.Alloc(PageSize, PageSize)
		pattern := bytes.Repeat([]byte{0xA5, 0x5A, 0x00, 0xFF}, PageSize/4)
		s, _ := r.host.Slice(dataBuf, PageSize)
		copy(s, pattern)

		w := SQE{Opcode: IOWrite, NSID: 1, PRP1: dataBuf, CDW10: 100, CDW12: 7} // LBA 100, 8 blocks
		if cqe := execIO(t, p, r.host, q, &w); !cqe.OK() {
			t.Fatalf("write status %#x", cqe.Status())
		}
		// Clear the buffer, read back.
		for i := range s {
			s[i] = 0
		}
		rd := SQE{Opcode: IORead, NSID: 1, PRP1: dataBuf, CDW10: 100, CDW12: 7}
		if cqe := execIO(t, p, r.host, q, &rd); !cqe.OK() {
			t.Fatalf("read status %#x", cqe.Status())
		}
		if !bytes.Equal(s, pattern) {
			t.Fatal("read-back data differs from written data")
		}
	})
	if r.ctrl.Stats.ReadCmds != 1 || r.ctrl.Stats.WriteCmds != 1 {
		t.Fatalf("stats: %+v", r.ctrl.Stats)
	}
}

func TestIOUnwrittenReadsZero(t *testing.T) {
	r := newRig(t)
	r.run(t, func(p *sim.Proc) {
		a := r.enable(t, p)
		q := r.ioQueue(t, p, a, 16)
		buf, _ := r.host.Alloc(PageSize, PageSize)
		s, _ := r.host.Slice(buf, PageSize)
		for i := range s {
			s[i] = 0xEE
		}
		rd := SQE{Opcode: IORead, NSID: 1, PRP1: buf, CDW10: 5000, CDW12: 7}
		if cqe := execIO(t, p, r.host, q, &rd); !cqe.OK() {
			t.Fatalf("read status %#x", cqe.Status())
		}
		for i, b := range s {
			if b != 0 {
				t.Fatalf("byte %d = %#x, want 0", i, b)
			}
		}
	})
}

func TestIOFlush(t *testing.T) {
	r := newRig(t)
	r.run(t, func(p *sim.Proc) {
		a := r.enable(t, p)
		q := r.ioQueue(t, p, a, 16)
		fl := SQE{Opcode: IOFlush, NSID: 1}
		if cqe := execIO(t, p, r.host, q, &fl); !cqe.OK() {
			t.Fatalf("flush status %#x", cqe.Status())
		}
	})
	if r.med.Flushes != 1 {
		t.Fatalf("flushes = %d", r.med.Flushes)
	}
}

func TestIOErrors(t *testing.T) {
	r := newRig(t)
	r.run(t, func(p *sim.Proc) {
		a := r.enable(t, p)
		q := r.ioQueue(t, p, a, 16)
		buf, _ := r.host.Alloc(PageSize, PageSize)

		// LBA out of range.
		bad := SQE{Opcode: IORead, NSID: 1, PRP1: buf, CDW10: 0xFFFFFFFF, CDW11: 0xFF, CDW12: 0}
		cqe := execIO(t, p, r.host, q, &bad)
		if sct, sc := cqe.StatusCode(); sct != SCTGeneric || sc != SCLBAOutOfRange {
			t.Errorf("OOB: (%d,%#x)", sct, sc)
		}
		// Invalid namespace.
		badNS := SQE{Opcode: IORead, NSID: 9, PRP1: buf, CDW10: 0, CDW12: 0}
		cqe = execIO(t, p, r.host, q, &badNS)
		if sct, sc := cqe.StatusCode(); sct != SCTGeneric || sc != SCInvalidNS {
			t.Errorf("bad NS: (%d,%#x)", sct, sc)
		}
		// Invalid opcode.
		badOp := SQE{Opcode: 0x7F, NSID: 1, PRP1: buf}
		cqe = execIO(t, p, r.host, q, &badOp)
		if sct, sc := cqe.StatusCode(); sct != SCTGeneric || sc != SCInvalidOpcode {
			t.Errorf("bad op: (%d,%#x)", sct, sc)
		}
	})
}

func TestPRPListLargeTransfer(t *testing.T) {
	r := newRig(t)
	r.run(t, func(p *sim.Proc) {
		a := r.enable(t, p)
		q := r.ioQueue(t, p, a, 16)
		// 5 pages (20 KiB) => PRP1 + PRP list with 4 entries.
		const pages = 5
		total := pages * PageSize
		var pageAddrs [pages]pcie.Addr
		for i := range pageAddrs {
			pageAddrs[i], _ = r.host.Alloc(PageSize, PageSize)
		}
		listAddr, _ := r.host.Alloc(PageSize, PageSize)
		list, _ := r.host.Slice(listAddr, PageSize)
		for i := 1; i < pages; i++ {
			putLE64(list[(i-1)*8:], uint64(pageAddrs[i]))
		}
		// Fill with pattern.
		for i := 0; i < pages; i++ {
			s, _ := r.host.Slice(pageAddrs[i], PageSize)
			for j := range s {
				s[j] = byte(i*31 + j%251)
			}
		}
		nlb := total/512 - 1
		w := SQE{Opcode: IOWrite, NSID: 1, PRP1: pageAddrs[0], PRP2: listAddr,
			CDW10: 2000, CDW12: uint32(nlb)}
		if cqe := execIO(t, p, r.host, q, &w); !cqe.OK() {
			t.Fatalf("write status %#x", cqe.Status())
		}
		// Zero pages, read back, verify.
		for i := 0; i < pages; i++ {
			s, _ := r.host.Slice(pageAddrs[i], PageSize)
			for j := range s {
				s[j] = 0
			}
		}
		rd := SQE{Opcode: IORead, NSID: 1, PRP1: pageAddrs[0], PRP2: listAddr,
			CDW10: 2000, CDW12: uint32(nlb)}
		if cqe := execIO(t, p, r.host, q, &rd); !cqe.OK() {
			t.Fatalf("read status %#x", cqe.Status())
		}
		for i := 0; i < pages; i++ {
			s, _ := r.host.Slice(pageAddrs[i], PageSize)
			for j := range s {
				if s[j] != byte(i*31+j%251) {
					t.Fatalf("page %d byte %d mismatch", i, j)
				}
			}
		}
	})
}

func TestTwoPageTransferUsesPRP2Directly(t *testing.T) {
	r := newRig(t)
	r.run(t, func(p *sim.Proc) {
		a := r.enable(t, p)
		q := r.ioQueue(t, p, a, 16)
		p1, _ := r.host.Alloc(PageSize, PageSize)
		p2, _ := r.host.Alloc(PageSize, PageSize)
		s1, _ := r.host.Slice(p1, PageSize)
		s2, _ := r.host.Slice(p2, PageSize)
		for i := range s1 {
			s1[i] = 0x11
			s2[i] = 0x22
		}
		nlb := 2*PageSize/512 - 1
		w := SQE{Opcode: IOWrite, NSID: 1, PRP1: p1, PRP2: p2, CDW10: 0, CDW12: uint32(nlb)}
		if cqe := execIO(t, p, r.host, q, &w); !cqe.OK() {
			t.Fatalf("write status %#x", cqe.Status())
		}
		for i := range s1 {
			s1[i] = 0
			s2[i] = 0
		}
		rd := SQE{Opcode: IORead, NSID: 1, PRP1: p1, PRP2: p2, CDW10: 0, CDW12: uint32(nlb)}
		if cqe := execIO(t, p, r.host, q, &rd); !cqe.OK() {
			t.Fatalf("read status %#x", cqe.Status())
		}
		if s1[0] != 0x11 || s2[0] != 0x22 {
			t.Fatal("two-page PRP2 transfer corrupted data")
		}
	})
}

func TestQueueWrapAndPhaseFlip(t *testing.T) {
	r := newRig(t)
	r.run(t, func(p *sim.Proc) {
		a := r.enable(t, p)
		const depth = 4 // tiny queue: wraps quickly
		q := r.ioQueue(t, p, a, depth)
		buf, _ := r.host.Alloc(PageSize, PageSize)
		// 3 full wraps worth of commands, serially.
		for i := 0; i < 3*depth; i++ {
			rd := SQE{Opcode: IORead, NSID: 1, PRP1: buf, CDW10: uint32(i * 8), CDW12: 7}
			if cqe := execIO(t, p, r.host, q, &rd); !cqe.OK() {
				t.Fatalf("cmd %d status %#x", i, cqe.Status())
			}
		}
	})
	if r.ctrl.Stats.ReadCmds != 12 {
		t.Fatalf("reads = %d, want 12", r.ctrl.Stats.ReadCmds)
	}
}

func TestQueueDepthParallelism(t *testing.T) {
	// With QD=8, total time for 8 reads must be far below 8x serial time
	// (the medium has 7 channels).
	r := newRig(t)
	var elapsed sim.Time
	r.run(t, func(p *sim.Proc) {
		a := r.enable(t, p)
		q := r.ioQueue(t, p, a, 32)
		buf := make([]pcie.Addr, 8)
		for i := range buf {
			buf[i], _ = r.host.Alloc(PageSize, PageSize)
		}
		start := p.Now()
		for i := 0; i < 8; i++ {
			cmd := SQE{Opcode: IORead, NSID: 1, PRP1: buf[i], CDW10: uint32(i * 8), CDW12: 7}
			cmd.CID = q.NextCID()
			if err := q.Submit(p, r.host, &cmd); err != nil {
				t.Fatal(err)
			}
		}
		done := 0
		for done < 8 {
			_, ok, err := q.Poll(p, r.host)
			if err != nil {
				t.Fatal(err)
			}
			if ok {
				done++
				continue
			}
			p.Sleep(200)
		}
		elapsed = p.Now() - start
	})
	serial := 8 * r.med.Params().ReadBaseNs
	if elapsed >= serial {
		t.Fatalf("8 reads QD8 took %d ns, not faster than serial %d ns", elapsed, serial)
	}
}

func TestCreateQueueValidation(t *testing.T) {
	r := newRig(t)
	r.run(t, func(p *sim.Proc) {
		a := r.enable(t, p)
		sq, _ := r.host.Alloc(4096, PageSize)
		cq, _ := r.host.Alloc(4096, PageSize)

		// SQ referencing a nonexistent CQ.
		bad := SQE{Opcode: AdminCreateIOSQ, PRP1: sq, CDW10: 2 | 63<<16, CDW11: 1 | 2<<16}
		if _, err := a.Exec(p, &bad); !errors.Is(err, ErrCommandFailed) {
			t.Errorf("SQ w/o CQ: %v", err)
		}
		// QID 0 is reserved.
		bad = SQE{Opcode: AdminCreateIOCQ, PRP1: cq, CDW10: 0 | 63<<16, CDW11: 1}
		if _, err := a.Exec(p, &bad); !errors.Is(err, ErrCommandFailed) {
			t.Errorf("QID 0: %v", err)
		}
		// QID beyond CAP.
		bad = SQE{Opcode: AdminCreateIOCQ, PRP1: cq, CDW10: 99 | 63<<16, CDW11: 1}
		if _, err := a.Exec(p, &bad); !errors.Is(err, ErrCommandFailed) {
			t.Errorf("QID 99: %v", err)
		}
		// Non-contiguous queue (PC=0).
		bad = SQE{Opcode: AdminCreateIOCQ, PRP1: cq, CDW10: 2 | 63<<16, CDW11: 0}
		if _, err := a.Exec(p, &bad); !errors.Is(err, ErrCommandFailed) {
			t.Errorf("PC=0: %v", err)
		}
		// Valid pair, then duplicate rejected.
		if err := a.CreateQueuePair(p, 2, 64, sq, cq, false, 0); err != nil {
			t.Fatal(err)
		}
		dup := SQE{Opcode: AdminCreateIOCQ, PRP1: cq, CDW10: 2 | 63<<16, CDW11: 1}
		if _, err := a.Exec(p, &dup); !errors.Is(err, ErrCommandFailed) {
			t.Errorf("duplicate CQ: %v", err)
		}
	})
}

func TestDeleteQueuePair(t *testing.T) {
	r := newRig(t)
	r.run(t, func(p *sim.Proc) {
		a := r.enable(t, p)
		sq, _ := r.host.Alloc(4096, PageSize)
		cq, _ := r.host.Alloc(4096, PageSize)
		if err := a.CreateQueuePair(p, 1, 64, sq, cq, false, 0); err != nil {
			t.Fatal(err)
		}
		// Deleting the CQ while the SQ exists must fail.
		cmd := SQE{Opcode: AdminDeleteIOCQ, CDW10: 1}
		if _, err := a.Exec(p, &cmd); !errors.Is(err, ErrCommandFailed) {
			t.Errorf("CQ delete with live SQ: %v", err)
		}
		if err := a.DeleteQueuePair(p, 1); err != nil {
			t.Fatal(err)
		}
		// The QID is reusable afterwards.
		if err := a.CreateQueuePair(p, 1, 64, sq, cq, false, 0); err != nil {
			t.Fatalf("recreate: %v", err)
		}
	})
}

func TestAbortReportsNotAborted(t *testing.T) {
	r := newRig(t)
	r.run(t, func(p *sim.Proc) {
		a := r.enable(t, p)
		cmd := SQE{Opcode: AdminAbort, CDW10: 1}
		cqe, err := a.Exec(p, &cmd)
		if err != nil {
			t.Fatal(err)
		}
		if cqe.DW0&1 != 1 {
			t.Error("abort claims success; model never aborts")
		}
	})
}

func TestGetLogPage(t *testing.T) {
	r := newRig(t)
	r.run(t, func(p *sim.Proc) {
		a := r.enable(t, p)
		buf, _ := r.host.Alloc(PageSize, PageSize)
		cmd := SQE{Opcode: AdminGetLogPage, PRP1: buf, CDW10: 1 | 255<<16}
		if _, err := a.Exec(p, &cmd); err != nil {
			t.Fatal(err)
		}
	})
}

func TestMSIInterruptDelivery(t *testing.T) {
	r := newRig(t)
	intrAddr := pcie.Addr(0x100000 + 4<<20) // within host DRAM
	fired := 0
	r.host.Watch(pcie.Range{Base: intrAddr, Size: 4}, func(pcie.Addr, int) { fired++ })
	r.run(t, func(p *sim.Proc) {
		a := r.enable(t, p)
		if err := r.ctrl.SetMSIVector(1, intrAddr, 0xFEE); err != nil {
			t.Fatal(err)
		}
		sq, _ := r.host.Alloc(4096, PageSize)
		cq, _ := r.host.Alloc(4096, PageSize)
		if err := a.CreateQueuePair(p, 1, 64, sq, cq, true, 1); err != nil {
			t.Fatal(err)
		}
		q := NewQueueView(1, 64, sq, cq,
			rigBARBase+SQTailDoorbell(1, a.DSTRD), rigBARBase+CQHeadDoorbell(1, a.DSTRD))
		buf, _ := r.host.Alloc(PageSize, PageSize)
		rd := SQE{Opcode: IORead, NSID: 1, PRP1: buf, CDW10: 0, CDW12: 7}
		execIO(t, p, r.host, q, &rd)
	})
	if fired == 0 {
		t.Fatal("MSI vector never delivered")
	}
	if r.ctrl.Stats.Interrupts == 0 {
		t.Fatal("interrupt counter zero")
	}
}

func TestFetchLatencyDependsOnSQPlacement(t *testing.T) {
	// Two controllers in fabrics with different distances to SQ memory
	// complete identical commands at different times. This is the Fig. 8
	// effect in miniature (full version lives in the cluster package).
	lat := func(extraSwitches int) sim.Time {
		k := sim.NewKernel()
		dom := pcie.NewDomain("d", k, pcie.LinkParams{})
		rc := dom.AddNode(pcie.RootComplex, "rc")
		prev := rc
		for i := 0; i < extraSwitches; i++ {
			sw := dom.AddNode(pcie.Switch, "sw")
			dom.Connect(prev, sw)
			prev = sw
		}
		ep := dom.AddNode(pcie.Endpoint, "nvme")
		dom.Connect(prev, ep)
		mem := memory.New(0x100000, 8<<20)
		host, err := pcie.NewHostPort(dom, rc, mem, pcie.CPUParams{})
		if err != nil {
			t.Fatal(err)
		}
		med := NewFlashMedium(k, 512, 1<<20, FlashParams{JitterNs: 1, TailProb: 1e-12}, 7)
		_, err = New("nvme", dom, ep, pcie.Range{Base: rigBARBase, Size: rigBARSize}, med, Params{})
		if err != nil {
			t.Fatal(err)
		}
		var done sim.Time
		k.Spawn("drv", func(p *sim.Proc) {
			a := NewAdminClient(host, rigBARBase)
			if err := a.Enable(p, 16); err != nil {
				t.Error(err)
				return
			}
			sq, _ := host.Alloc(4096, PageSize)
			cq, _ := host.Alloc(4096, PageSize)
			if err := a.CreateQueuePair(p, 1, 16, sq, cq, false, 0); err != nil {
				t.Error(err)
				return
			}
			q := NewQueueView(1, 16, sq, cq,
				rigBARBase+SQTailDoorbell(1, a.DSTRD), rigBARBase+CQHeadDoorbell(1, a.DSTRD))
			buf, _ := host.Alloc(PageSize, PageSize)
			start := p.Now()
			rd := SQE{Opcode: IORead, NSID: 1, PRP1: buf, CDW10: 0, CDW12: 7, CID: 1}
			if err := q.Submit(p, host, &rd); err != nil {
				t.Error(err)
				return
			}
			for {
				_, ok, err := q.Poll(p, host)
				if err != nil {
					t.Error(err)
					return
				}
				if ok {
					break
				}
				p.Sleep(100)
			}
			done = p.Now() - start
		})
		k.RunAll()
		k.Shutdown()
		return done
	}
	near := lat(0)
	far := lat(3)
	if far <= near {
		t.Fatalf("far SQ (%d ns) not slower than near SQ (%d ns)", far, near)
	}
}

func putLE64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}
