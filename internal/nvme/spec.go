// Package nvme implements an NVMe 1.3-subset controller over the simulated
// PCIe fabric: the register file (CAP/CC/CSTS/AQA/ASQ/ACQ and doorbells),
// paired submission/completion queues with phase tags, PRP data transfer,
// the admin command set needed by drivers (Identify, Create/Delete I/O
// queues, Get/Set Features, Abort) and the I/O command set (Read, Write,
// Flush), executing against a flash medium model.
//
// The controller is a simulation process: it fetches commands with DMA
// reads (so submission-queue placement changes fetch latency, the effect
// Figure 8 of the paper exploits), writes data and completions with posted
// DMA writes, and is notified through doorbell register writes arriving
// via the fabric — from the local root complex or across NTBs.
package nvme

import "encoding/binary"

// Register offsets within BAR0 (NVMe 1.3 §3.1).
const (
	RegCAP   = 0x00 // controller capabilities (8 bytes)
	RegVS    = 0x08 // version (4 bytes)
	RegINTMS = 0x0C // interrupt mask set
	RegINTMC = 0x10 // interrupt mask clear
	RegCC    = 0x14 // controller configuration
	RegCSTS  = 0x1C // controller status
	RegAQA   = 0x24 // admin queue attributes
	RegASQ   = 0x28 // admin submission queue base (8 bytes)
	RegACQ   = 0x30 // admin completion queue base (8 bytes)
	// RegCMBLOC / RegCMBSZ advertise the Controller Memory Buffer: its
	// offset within BAR0 and its size in bytes (simplified encoding).
	RegCMBLOC = 0x38
	RegCMBSZ  = 0x3C
	// DoorbellBase is the start of the doorbell region: SQ y tail doorbell
	// at DoorbellBase + (2y)*(4<<DSTRD), CQ y head doorbell at
	// DoorbellBase + (2y+1)*(4<<DSTRD).
	DoorbellBase = 0x1000
	// MSIXTableBase is the MSI-X vector table within BAR0: one 16-byte
	// entry per vector (address 8 B, data 4 B, control 4 B; control bit 0
	// is the mask bit, 0 = enabled once the address is programmed).
	MSIXTableBase = 0x2000
	MSIXEntrySize = 16
	// CMBBase is the Controller Memory Buffer offset within BAR0: host-
	// visible controller-internal memory in which queues (and data) may
	// be placed, so controller-side accesses never touch the fabric.
	CMBBase = 0x4000
)

// CC register bits.
const (
	CCEnable = 1 << 0
	// CC.AMS (bits 13:11) selects the arbitration mechanism; the value must
	// be one advertised by CAP.AMS.
	CCAMSShift = 11
	CCAMSMask  = 0x7
	// IOSQES/IOCQES encode entry sizes as powers of two in bits 19:16 and
	// 23:20; required values are 6 (64 B) and 4 (16 B).
	CCIOSQESShift = 16
	CCIOCQESShift = 20
)

// Arbitration mechanism values (CC.AMS). Round robin is always
// supported; weighted round robin with urgent priority class is
// advertised through CAP.AMS bit 17 (CAPAMSWRRU).
const (
	AMSRoundRobin = 0
	AMSWRRUrgent  = 1
)

// CAPAMSWRRU is CAP bit 17: the controller supports weighted round
// robin with urgent priority class arbitration.
const CAPAMSWRRU = uint64(1) << 17

// I/O submission queue priority classes (Create I/O SQ CDW11 QPRIO,
// bits 2:1). Only meaningful when CC.AMS selects WRR with urgent;
// under round-robin arbitration every queue is treated equally.
const (
	QPrioUrgent = 0
	QPrioHigh   = 1
	QPrioMedium = 2
	QPrioLow    = 3
)

// CSTS register bits.
const (
	CSTSReady = 1 << 0
	CSTSCFS   = 1 << 1 // controller fatal status
)

// Version encodes NVMe 1.3.
const Version = uint32(1)<<16 | uint32(3)<<8

// Queue entry sizes.
const (
	SQESize = 64
	CQESize = 16
)

// PageSize is the memory page size (CC.MPS = 0).
const PageSize = 4096

// Admin opcodes (NVMe 1.3 §5).
const (
	AdminDeleteIOSQ  = 0x00
	AdminCreateIOSQ  = 0x01
	AdminGetLogPage  = 0x02
	AdminDeleteIOCQ  = 0x04
	AdminCreateIOCQ  = 0x05
	AdminIdentify    = 0x06
	AdminAbort       = 0x08
	AdminSetFeatures = 0x09
	AdminGetFeatures = 0x0A
)

// I/O opcodes (NVM command set, §6).
const (
	IOFlush       = 0x00
	IOWrite       = 0x01
	IORead        = 0x02
	IOCompare     = 0x05
	IOWriteZeroes = 0x08
	IODSM         = 0x09
	// Persistent reservation commands (§6.11–6.14). The volume layer uses
	// these to fence stale writers after a path failover.
	IOResvRegister = 0x0D
	IOResvReport   = 0x0E
	IOResvAcquire  = 0x11
	IOResvRelease  = 0x15
)

// Reservation types (RTYPE, §6.11). Only the exclusive-writer types are
// meaningful on this single-namespace controller; the "all registrants"
// variants are accepted but behave like their registrants-only forms.
const (
	ResvWriteExclusive         = 1 // only the holder may write
	ResvExclusiveAccess        = 2 // only the holder may read or write
	ResvWriteExclusiveRegOnly  = 3 // registrants may write
	ResvExclusiveAccessRegOnly = 4 // registrants may read/write
	ResvWriteExclusiveAllReg   = 5
	ResvExclusiveAccessAllReg  = 6
)

// Reservation Register actions (CDW10 RREGA bits 2:0).
const (
	ResvRegisterKey   = 0 // register a new key
	ResvUnregisterKey = 1 // unregister
	ResvReplaceKey    = 2 // replace an existing key
)

// Reservation Acquire actions (CDW10 RACQA bits 2:0).
const (
	ResvAcquireAct      = 0 // acquire the reservation
	ResvPreempt         = 1 // preempt the holder / registrants with PRKEY
	ResvPreemptAndAbort = 2 // preempt and abort the victim's commands
)

// Reservation Release actions (CDW10 RRELA bits 2:0).
const (
	ResvReleaseAct = 0 // release the held reservation
	ResvClearAct   = 1 // clear: drop reservation and every registration
)

// ResvIEKEY is CDW10 bit 3 (ignore existing key) on Register.
const ResvIEKEY = 1 << 3

// ResvRTYPEShift positions RTYPE within CDW10 (bits 15:8) for Acquire and
// Release.
const ResvRTYPEShift = 8

// DSM (Dataset Management) constants.
const (
	// DSMRangeSize is the size of one range definition in the DSM list.
	DSMRangeSize = 16
	// DSMMaxRanges bounds NR+1.
	DSMMaxRanges = 256
	// DSMAttrDeallocate is CDW11 bit 2.
	DSMAttrDeallocate = 1 << 2
)

// Identify CNS values.
const (
	CNSNamespace  = 0x00
	CNSController = 0x01
)

// Feature identifiers.
const (
	FeatArbitration        = 0x01
	FeatVolatileWriteCache = 0x06
	FeatNumQueues          = 0x07
)

// Arbitration feature (FID 0x01) CDW11 layout: AB in bits 2:0 (burst =
// 2^AB commands per queue per turn, ArbBurstUnlimited = no limit), LPW
// in 15:8, MPW in 23:16, HPW in 31:24. Weights are 0-based: a field
// value w grants w+1 command credits per weighted round.
const (
	ArbBurstUnlimited = 0x7
	ArbABMask         = 0x7
	ArbLPWShift       = 8
	ArbMPWShift       = 16
	ArbHPWShift       = 24
)

// ArbitrationCDW11 packs the arbitration feature fields.
func ArbitrationCDW11(ab, hpw, mpw, lpw uint8) uint32 {
	return uint32(ab&ArbABMask) | uint32(lpw)<<ArbLPWShift |
		uint32(mpw)<<ArbMPWShift | uint32(hpw)<<ArbHPWShift
}

// Log page identifiers.
const (
	LogErrorInfo = 0x01
	LogSMART     = 0x02
)

// SMARTLog is the subset of the SMART / Health Information log page
// (LID 0x02) the tooling consumes. Units fields count 512-byte units in
// thousands, per spec.
type SMARTLog struct {
	TemperatureK    uint16
	UnitsRead       uint64
	UnitsWritten    uint64
	HostReadCmds    uint64
	HostWriteCmds   uint64
	PowerCycles     uint64
	UnsafeShutdowns uint64
	MediaErrors     uint64
}

// MarshalSMARTLog lays the structure out per spec offsets (each numeric
// field is a 16-byte little-endian integer; we fill the low 8 bytes).
func MarshalSMARTLog(s SMARTLog) []byte {
	b := make([]byte, 512)
	binary.LittleEndian.PutUint16(b[1:], s.TemperatureK)
	put128 := func(off int, v uint64) {
		binary.LittleEndian.PutUint64(b[off:], v)
	}
	put128(32, s.UnitsRead)
	put128(48, s.UnitsWritten)
	put128(64, s.HostReadCmds)
	put128(80, s.HostWriteCmds)
	put128(112, s.PowerCycles)
	put128(144, s.UnsafeShutdowns)
	put128(160, s.MediaErrors)
	return b
}

// UnmarshalSMARTLog decodes the fields written by MarshalSMARTLog.
func UnmarshalSMARTLog(b []byte) SMARTLog {
	get := func(off int) uint64 { return binary.LittleEndian.Uint64(b[off:]) }
	return SMARTLog{
		TemperatureK:    binary.LittleEndian.Uint16(b[1:]),
		UnitsRead:       get(32),
		UnitsWritten:    get(48),
		HostReadCmds:    get(64),
		HostWriteCmds:   get(80),
		PowerCycles:     get(112),
		UnsafeShutdowns: get(144),
		MediaErrors:     get(160),
	}
}

// Status code types.
const (
	SCTGeneric     = 0
	SCTCmdSpecific = 1
	SCTMediaError  = 2
)

// Generic status codes.
const (
	SCSuccess        = 0x00
	SCInvalidOpcode  = 0x01
	SCInvalidField   = 0x02
	SCDataTransfer   = 0x04
	SCAbortRequested = 0x07
	SCInvalidNS      = 0x0B
	SCLBAOutOfRange  = 0x80
	SCCapExceeded    = 0x81
	// SCReservationConflict fences a command blocked by a persistent
	// reservation held (or required) by another registrant (§4.6.1.2.1).
	SCReservationConflict = 0x83
)

// Media error status codes.
const (
	SCWriteFault      = 0x80
	SCUnrecoveredRead = 0x81
	SCCompareFailure  = 0x85
)

// Command-specific status codes (for queue management).
const (
	SCInvalidCQ        = 0x00
	SCInvalidQID       = 0x01
	SCInvalidQSize     = 0x02
	SCAbortLimit       = 0x03
	SCInvalidIntVector = 0x08
)

// Status packs a completion status field (excluding the phase bit).
// Layout within the 15-bit field: bits 7:0 SC, bits 10:8 SCT.
func Status(sct, sc uint8) uint16 {
	return uint16(sct&0x7)<<8 | uint16(sc)
}

// StatusOK is the success status.
const StatusOK = uint16(0)

// SQE is a 64-byte submission queue entry.
type SQE struct {
	Opcode uint8
	Flags  uint8
	CID    uint16
	NSID   uint32
	MPTR   uint64
	PRP1   uint64
	PRP2   uint64
	CDW10  uint32
	CDW11  uint32
	CDW12  uint32
	CDW13  uint32
	CDW14  uint32
	CDW15  uint32
}

// Marshal encodes the entry in NVMe wire layout (little endian).
func (e *SQE) Marshal() []byte {
	b := make([]byte, SQESize)
	b[0] = e.Opcode
	b[1] = e.Flags
	binary.LittleEndian.PutUint16(b[2:], e.CID)
	binary.LittleEndian.PutUint32(b[4:], e.NSID)
	binary.LittleEndian.PutUint64(b[16:], e.MPTR)
	binary.LittleEndian.PutUint64(b[24:], e.PRP1)
	binary.LittleEndian.PutUint64(b[32:], e.PRP2)
	binary.LittleEndian.PutUint32(b[40:], e.CDW10)
	binary.LittleEndian.PutUint32(b[44:], e.CDW11)
	binary.LittleEndian.PutUint32(b[48:], e.CDW12)
	binary.LittleEndian.PutUint32(b[52:], e.CDW13)
	binary.LittleEndian.PutUint32(b[56:], e.CDW14)
	binary.LittleEndian.PutUint32(b[60:], e.CDW15)
	return b
}

// UnmarshalSQE decodes a 64-byte submission queue entry.
func UnmarshalSQE(b []byte) SQE {
	return SQE{
		Opcode: b[0],
		Flags:  b[1],
		CID:    binary.LittleEndian.Uint16(b[2:]),
		NSID:   binary.LittleEndian.Uint32(b[4:]),
		MPTR:   binary.LittleEndian.Uint64(b[16:]),
		PRP1:   binary.LittleEndian.Uint64(b[24:]),
		PRP2:   binary.LittleEndian.Uint64(b[32:]),
		CDW10:  binary.LittleEndian.Uint32(b[40:]),
		CDW11:  binary.LittleEndian.Uint32(b[44:]),
		CDW12:  binary.LittleEndian.Uint32(b[48:]),
		CDW13:  binary.LittleEndian.Uint32(b[52:]),
		CDW14:  binary.LittleEndian.Uint32(b[56:]),
		CDW15:  binary.LittleEndian.Uint32(b[60:]),
	}
}

// CQE is a 16-byte completion queue entry. StatusPhase bit 0 is the phase
// tag; bits 15:1 hold the status field.
type CQE struct {
	DW0         uint32
	SQHead      uint16
	SQID        uint16
	CID         uint16
	StatusPhase uint16
}

// Marshal encodes the entry in NVMe wire layout.
func (c *CQE) Marshal() []byte {
	b := make([]byte, CQESize)
	binary.LittleEndian.PutUint32(b[0:], c.DW0)
	binary.LittleEndian.PutUint16(b[8:], c.SQHead)
	binary.LittleEndian.PutUint16(b[10:], c.SQID)
	binary.LittleEndian.PutUint16(b[12:], c.CID)
	binary.LittleEndian.PutUint16(b[14:], c.StatusPhase)
	return b
}

// UnmarshalCQE decodes a 16-byte completion queue entry.
func UnmarshalCQE(b []byte) CQE {
	return CQE{
		DW0:         binary.LittleEndian.Uint32(b[0:]),
		SQHead:      binary.LittleEndian.Uint16(b[8:]),
		SQID:        binary.LittleEndian.Uint16(b[10:]),
		CID:         binary.LittleEndian.Uint16(b[12:]),
		StatusPhase: binary.LittleEndian.Uint16(b[14:]),
	}
}

// Phase extracts the phase tag.
func (c *CQE) Phase() bool { return c.StatusPhase&1 == 1 }

// Status extracts the 15-bit status field.
func (c *CQE) Status() uint16 { return c.StatusPhase >> 1 }

// OK reports whether the command succeeded.
func (c *CQE) OK() bool { return c.Status() == StatusOK }

// StatusCode splits the status into (sct, sc).
func (c *CQE) StatusCode() (sct, sc uint8) {
	s := c.Status()
	return uint8(s >> 8 & 0x7), uint8(s & 0xFF)
}

// ONCS (optional NVM command support) bits.
const (
	ONCSCompare      = 1 << 0
	ONCSWriteZeroes  = 1 << 3
	ONCSDSM          = 1 << 2
	ONCSReservations = 1 << 5
)

// OACS (optional admin command support) bits.
const (
	OACSGetLogPage = 1 << 0 // (always mandatory; kept for symmetry)
)

// IdentifyController is the subset of the 4096-byte Identify Controller
// data structure the drivers consume.
type IdentifyController struct {
	VID      uint16
	SSVID    uint16
	Serial   string // 20 bytes
	Model    string // 40 bytes
	Firmware string // 8 bytes
	// OACS / ONCS advertise optional admin / NVM command support.
	OACS uint16
	ONCS uint16
	// NN is the number of namespaces.
	NN uint32
	// MaxQueueEntries mirrors CAP.MQES+1 for convenience.
	MaxQueueEntries int
}

// SupportsCompare reports ONCS bit 0.
func (id IdentifyController) SupportsCompare() bool { return id.ONCS&ONCSCompare != 0 }

// SupportsWriteZeroes reports ONCS bit 3.
func (id IdentifyController) SupportsWriteZeroes() bool { return id.ONCS&ONCSWriteZeroes != 0 }

// SupportsDSM reports ONCS bit 2.
func (id IdentifyController) SupportsDSM() bool { return id.ONCS&ONCSDSM != 0 }

// SupportsReservations reports ONCS bit 5.
func (id IdentifyController) SupportsReservations() bool { return id.ONCS&ONCSReservations != 0 }

// MarshalIdentifyController lays the structure out per spec offsets.
func MarshalIdentifyController(id IdentifyController) []byte {
	b := make([]byte, PageSize)
	binary.LittleEndian.PutUint16(b[0:], id.VID)
	binary.LittleEndian.PutUint16(b[2:], id.SSVID)
	copyPadded(b[4:24], id.Serial)
	copyPadded(b[24:64], id.Model)
	copyPadded(b[64:72], id.Firmware)
	binary.LittleEndian.PutUint16(b[256:], id.OACS)
	binary.LittleEndian.PutUint32(b[516:], id.NN)
	binary.LittleEndian.PutUint16(b[520:], id.ONCS)
	return b
}

// UnmarshalIdentifyController decodes the fields written by
// MarshalIdentifyController.
func UnmarshalIdentifyController(b []byte) IdentifyController {
	return IdentifyController{
		VID:      binary.LittleEndian.Uint16(b[0:]),
		SSVID:    binary.LittleEndian.Uint16(b[2:]),
		Serial:   trimPadded(b[4:24]),
		Model:    trimPadded(b[24:64]),
		Firmware: trimPadded(b[64:72]),
		OACS:     binary.LittleEndian.Uint16(b[256:]),
		NN:       binary.LittleEndian.Uint32(b[516:]),
		ONCS:     binary.LittleEndian.Uint16(b[520:]),
	}
}

// IdentifyNamespace is the subset of the Identify Namespace structure the
// drivers consume.
type IdentifyNamespace struct {
	NSZE uint64 // namespace size in logical blocks
	NCAP uint64
	NUSE uint64
	// LBADS is the log2 of the logical block size (LBA format 0).
	LBADS uint8
}

// MarshalIdentifyNamespace lays the structure out per spec offsets.
func MarshalIdentifyNamespace(ns IdentifyNamespace) []byte {
	b := make([]byte, PageSize)
	binary.LittleEndian.PutUint64(b[0:], ns.NSZE)
	binary.LittleEndian.PutUint64(b[8:], ns.NCAP)
	binary.LittleEndian.PutUint64(b[16:], ns.NUSE)
	// LBAF0 at offset 128: bits 23:16 LBADS.
	b[128+2] = ns.LBADS
	return b
}

// UnmarshalIdentifyNamespace decodes the fields written by
// MarshalIdentifyNamespace.
func UnmarshalIdentifyNamespace(b []byte) IdentifyNamespace {
	return IdentifyNamespace{
		NSZE:  binary.LittleEndian.Uint64(b[0:]),
		NCAP:  binary.LittleEndian.Uint64(b[8:]),
		NUSE:  binary.LittleEndian.Uint64(b[16:]),
		LBADS: b[128+2],
	}
}

func copyPadded(dst []byte, s string) {
	for i := range dst {
		if i < len(s) {
			dst[i] = s[i]
		} else {
			dst[i] = ' '
		}
	}
}

func trimPadded(b []byte) string {
	end := len(b)
	for end > 0 && (b[end-1] == ' ' || b[end-1] == 0) {
		end--
	}
	return string(b[:end])
}

// ResvRegistrant is one registered controller entry in the Reservation
// Status (report) data structure. In this model the sharing unit is the
// queue pair, so CNTLID carries the registrant's SQ ID and HostID the
// owning host.
type ResvRegistrant struct {
	CNTLID uint16
	// Holder reports RCSTS bit 0: this registrant holds the reservation.
	Holder bool
	HostID uint64
	RKey   uint64
}

// ResvStatus is the Reservation Status data structure returned by
// Reservation Report (§6.13): a header followed by one registered
// controller entry per registrant.
type ResvStatus struct {
	// Gen is the generation counter, incremented on every register,
	// unregister, replace, preempt and clear.
	Gen uint32
	// RType is the held reservation type (0 = none held).
	RType uint8
	// Regs lists registrants in ascending CNTLID order.
	Regs []ResvRegistrant
}

// ResvStatusHdrSize is the report header size; registrant entries follow
// at this offset, ResvRegistrantSize bytes each (spec layout).
const (
	ResvStatusHdrSize  = 24
	ResvRegistrantSize = 24
)

// MarshalResvStatus lays the structure out per spec offsets: GEN at 0,
// RTYPE at 4, REGCTL at 5, then 24-byte registrant entries from offset 24
// (CNTLID at 0, RCSTS at 2, HOSTID at 8, RKEY at 16).
func MarshalResvStatus(s ResvStatus) []byte {
	b := make([]byte, ResvStatusHdrSize+len(s.Regs)*ResvRegistrantSize)
	binary.LittleEndian.PutUint32(b[0:], s.Gen)
	b[4] = s.RType
	binary.LittleEndian.PutUint16(b[5:], uint16(len(s.Regs)))
	for i, r := range s.Regs {
		e := b[ResvStatusHdrSize+i*ResvRegistrantSize:]
		binary.LittleEndian.PutUint16(e[0:], r.CNTLID)
		if r.Holder {
			e[2] = 1
		}
		binary.LittleEndian.PutUint64(e[8:], r.HostID)
		binary.LittleEndian.PutUint64(e[16:], r.RKey)
	}
	return b
}

// UnmarshalResvStatus decodes the fields written by MarshalResvStatus.
// Truncated registrant entries (the host asked for fewer dwords than the
// full report) are dropped, as a real host must tolerate.
func UnmarshalResvStatus(b []byte) ResvStatus {
	if len(b) < ResvStatusHdrSize {
		return ResvStatus{}
	}
	s := ResvStatus{
		Gen:   binary.LittleEndian.Uint32(b[0:]),
		RType: b[4],
	}
	n := int(binary.LittleEndian.Uint16(b[5:]))
	for i := 0; i < n; i++ {
		off := ResvStatusHdrSize + i*ResvRegistrantSize
		if off+ResvRegistrantSize > len(b) {
			break
		}
		e := b[off:]
		s.Regs = append(s.Regs, ResvRegistrant{
			CNTLID: binary.LittleEndian.Uint16(e[0:]),
			Holder: e[2]&1 != 0,
			HostID: binary.LittleEndian.Uint64(e[8:]),
			RKey:   binary.LittleEndian.Uint64(e[16:]),
		})
	}
	return s
}

// SQTailDoorbell returns the BAR offset of SQ qid's tail doorbell for
// doorbell stride dstrd (CAP.DSTRD).
func SQTailDoorbell(qid uint16, dstrd uint8) uint64 {
	return DoorbellBase + uint64(2*qid)*(4<<dstrd)
}

// CQHeadDoorbell returns the BAR offset of CQ qid's head doorbell.
func CQHeadDoorbell(qid uint16, dstrd uint8) uint64 {
	return DoorbellBase + uint64(2*qid+1)*(4<<dstrd)
}
