package nvme

import "repro/internal/sim"

// Weighted-round-robin arbitration (NVMe 1.3 §4.11.2). When CC.AMS
// selects AMSWRRUrgent the controller services submission queues in
// strict class order — admin commands first, then the urgent class,
// then one weighted turn among high/medium/low — instead of the flat
// round robin of rrPass. The weighted classes share a credit round:
// class weights (Arbitration feature, 0-based, so field value w grants
// w+1 credits) are refilled together whenever every class with pending
// work has exhausted its credits, and the arbitration burst (2^AB,
// ArbBurstUnlimited = no cap) bounds how many commands one queue may
// have claimed per service turn.

// defaultArbCDW11 is the power-on Arbitration feature value: burst 4
// (AB=2) with 8:4:1 high:medium:low weights.
const defaultArbCDW11 = uint32(2) | uint32(0)<<ArbLPWShift |
	uint32(3)<<ArbMPWShift | uint32(7)<<ArbHPWShift

// wrrSched is the weighted-class credit state. It is deliberately free
// of controller plumbing so the credit/burst math is table-testable:
// next consults only a pending-queue callback.
type wrrSched struct {
	// Weights are the effective per-round credits for high, medium and
	// low (class index 0..2 = QPrio - 1).
	Weights [3]int
	// Burst caps commands claimed from one queue per service turn;
	// 0 means unlimited (AB = ArbBurstUnlimited).
	Burst int
	// Rounds counts credit refills.
	Rounds uint64

	credits [3]int
	cursor  [3]uint16 // last serviced qid per class
}

// next picks the weighted class and queue to service: the highest class
// that still has credits and pending work, round-robin among that
// class's queues. max is the claim allowance for the turn — the
// remaining class credits capped by the burst. When every pending class
// is out of credits a new round starts (all credits refill). ok is
// false when no weighted class has pending work.
func (s *wrrSched) next(pending func(class int) []uint16) (class int, qid uint16, max int, ok bool) {
	var lists [3][]uint16
	any := false
	for cl := 0; cl < 3; cl++ {
		lists[cl] = pending(cl)
		if len(lists[cl]) > 0 {
			any = true
		}
	}
	if !any {
		return 0, 0, 0, false
	}
	// Two tries: the second runs after a credit refill, and since every
	// effective weight is >= 1 it always lands on a pending class.
	for try := 0; try < 2; try++ {
		for cl := 0; cl < 3; cl++ {
			if len(lists[cl]) == 0 || s.credits[cl] <= 0 {
				continue
			}
			q := nextAfter(lists[cl], s.cursor[cl])
			s.cursor[cl] = q
			max = s.credits[cl]
			if s.Burst > 0 && s.Burst < max {
				max = s.Burst
			}
			return cl, q, max, true
		}
		for cl := 0; cl < 3; cl++ {
			s.credits[cl] = s.Weights[cl]
		}
		s.Rounds++
	}
	return 0, 0, 0, false
}

// consume spends n of class's credits after a service turn.
func (s *wrrSched) consume(class, n int) { s.credits[class] -= n }

// nextAfter returns the smallest qid in list greater than cur, wrapping
// to the smallest overall — round robin over a sparse, changing set.
func nextAfter(list []uint16, cur uint16) uint16 {
	for _, q := range list {
		if q > cur {
			return q
		}
	}
	return list[0]
}

// applyArb re-derives the scheduler configuration from the Arbitration
// feature value. Credits reset so the new weights take effect on the
// next round.
func (c *Controller) applyArb() {
	v := c.arbCDW11
	burst := 0
	if ab := v & ArbABMask; ab != ArbBurstUnlimited {
		burst = 1 << ab
	}
	c.wrr.Burst = burst
	c.wrr.Weights = [3]int{
		int(v>>ArbHPWShift&0xFF) + 1,
		int(v>>ArbMPWShift&0xFF) + 1,
		int(v>>ArbLPWShift&0xFF) + 1,
	}
	c.wrr.credits = [3]int{}
}

// sqPending returns the number of claimable entries in sq.
func sqPending(sq *subQueue) int {
	return (sq.tail - sq.head + sq.size) % sq.size
}

// classPending lists the created I/O queues of a weighted class (0..2 =
// high/medium/low) that have pending entries, in ascending qid order.
func (c *Controller) classPending(class int) []uint16 {
	prio := uint8(class + 1)
	var out []uint16
	for i := 1; i < len(c.sqs); i++ {
		if sq := c.sqs[i]; sq != nil && sq.created && sq.prio == prio && sq.head != sq.tail {
			out = append(out, uint16(i))
		}
	}
	return out
}

// wrrPass runs one WRR-with-urgent service pass. Admin and urgent work
// is drained strictly ahead of the weighted classes (the spec allows
// urgent to starve them); then one weighted service turn runs. The
// caller loops while passes make progress.
func (c *Controller) wrrPass(p *sim.Proc) bool {
	progressed := false
	if sq := c.sqs[0]; sq != nil && sq.created {
		for sq.head != sq.tail {
			c.dispatch(p, sq)
			progressed = true
		}
	}
	for {
		served := false
		for i := 1; i < len(c.sqs); i++ {
			sq := c.sqs[i]
			if sq == nil || !sq.created || sq.prio != QPrioUrgent {
				continue
			}
			n := sqPending(sq)
			if n == 0 {
				continue
			}
			if c.wrr.Burst > 0 && n > c.wrr.Burst {
				n = c.wrr.Burst
			}
			for j := 0; j < n; j++ {
				c.dispatch(p, sq)
			}
			served, progressed = true, true
		}
		if !served {
			break
		}
	}
	if cl, qid, max, ok := c.wrr.next(c.classPending); ok {
		sq := c.sqs[qid]
		n := sqPending(sq)
		if n > max {
			n = max
		}
		for j := 0; j < n; j++ {
			c.dispatch(p, sq)
		}
		c.wrr.consume(cl, n)
		c.Stats.ArbRounds = c.wrr.Rounds
		progressed = true
	}
	return progressed
}
