package nvme

import (
	"testing"

	"repro/internal/pcie"
	"repro/internal/sim"
)

// TestMSIXTableWriteThroughBAR programs a vector via BAR writes, as the
// distributed manager does on behalf of remote clients, and checks the
// interrupt lands at the programmed address.
func TestMSIXTableWriteThroughBAR(t *testing.T) {
	r := newRig(t)
	intrAddr := pcie.Addr(0x100000 + 2<<20)
	fired := 0
	r.host.Watch(pcie.Range{Base: intrAddr, Size: 4}, func(pcie.Addr, int) { fired++ })
	r.run(t, func(p *sim.Proc) {
		a := r.enable(t, p)
		entry := uint64(MSIXTableBase) + 3*MSIXEntrySize
		if err := a.WriteReg64(p, entry, uint64(intrAddr)); err != nil {
			t.Fatal(err)
		}
		if err := a.WriteReg32(p, entry+8, 0xFEE3); err != nil {
			t.Fatal(err)
		}
		p.Sleep(sim.Microsecond)
		sq, _ := r.host.Alloc(4096, PageSize)
		cq, _ := r.host.Alloc(4096, PageSize)
		if err := a.CreateQueuePair(p, 3, 16, sq, cq, true, 3); err != nil {
			t.Fatal(err)
		}
		q := NewQueueView(3, 16, sq, cq,
			rigBARBase+SQTailDoorbell(3, a.DSTRD), rigBARBase+CQHeadDoorbell(3, a.DSTRD))
		buf, _ := r.host.Alloc(PageSize, PageSize)
		rd := SQE{Opcode: IORead, NSID: 1, PRP1: buf, CDW10: 0, CDW12: 7}
		execIO(t, p, r.host, q, &rd)
	})
	if fired == 0 {
		t.Fatal("MSI-X vector programmed via BAR never fired")
	}
}

// TestMSIXMaskBit verifies control-word bit 0 masks the vector.
func TestMSIXMaskBit(t *testing.T) {
	r := newRig(t)
	intrAddr := pcie.Addr(0x100000 + 2<<20)
	fired := 0
	r.host.Watch(pcie.Range{Base: intrAddr, Size: 4}, func(pcie.Addr, int) { fired++ })
	r.run(t, func(p *sim.Proc) {
		a := r.enable(t, p)
		entry := uint64(MSIXTableBase) + 1*MSIXEntrySize
		if err := a.WriteReg64(p, entry, uint64(intrAddr)); err != nil {
			t.Fatal(err)
		}
		// Mask the vector.
		if err := a.WriteReg32(p, entry+12, 1); err != nil {
			t.Fatal(err)
		}
		p.Sleep(sim.Microsecond)
		sq, _ := r.host.Alloc(4096, PageSize)
		cq, _ := r.host.Alloc(4096, PageSize)
		if err := a.CreateQueuePair(p, 1, 16, sq, cq, true, 1); err != nil {
			t.Fatal(err)
		}
		q := NewQueueView(1, 16, sq, cq,
			rigBARBase+SQTailDoorbell(1, a.DSTRD), rigBARBase+CQHeadDoorbell(1, a.DSTRD))
		buf, _ := r.host.Alloc(PageSize, PageSize)
		rd := SQE{Opcode: IORead, NSID: 1, PRP1: buf, CDW10: 0, CDW12: 7}
		execIO(t, p, r.host, q, &rd)
	})
	if fired != 0 {
		t.Fatal("masked MSI-X vector fired")
	}
}

// TestMSIXOutOfRangeIgnored ensures writes beyond the table are dropped
// like hardware reserved space.
func TestMSIXOutOfRangeIgnored(t *testing.T) {
	r := newRig(t)
	r.run(t, func(p *sim.Proc) {
		a := NewAdminClient(r.host, rigBARBase)
		// Vector 100 is within the BAR but beyond the controller's 32
		// vectors.
		if err := a.WriteReg64(p, uint64(MSIXTableBase)+100*MSIXEntrySize, 0xDEAD); err != nil {
			t.Fatal(err)
		}
	})
	if r.ctrl.Fatal() {
		t.Fatal("out-of-range MSI-X write set CFS")
	}
}
