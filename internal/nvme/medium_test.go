package nvme

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func mediumRig() (*sim.Kernel, *FlashMedium) {
	k := sim.NewKernel()
	med := NewFlashMedium(k, 512, 1<<16, FlashParams{}, 99)
	return k, med
}

func TestMediumReadWrite(t *testing.T) {
	k, med := mediumRig()
	k.Spawn("p", func(p *sim.Proc) {
		data := bytes.Repeat([]byte{0xCD}, 512*4)
		if err := med.Write(p, 10, 4, data); err != nil {
			t.Error(err)
		}
		got := make([]byte, 512*4)
		if err := med.Read(p, 10, 4, got); err != nil {
			t.Error(err)
		}
		if !bytes.Equal(got, data) {
			t.Error("data mismatch")
		}
	})
	k.RunAll()
	if med.Reads != 1 || med.Writes != 1 || med.WrittenBlocks() != 4 {
		t.Fatalf("counters: r=%d w=%d blocks=%d", med.Reads, med.Writes, med.WrittenBlocks())
	}
}

func TestMediumValidation(t *testing.T) {
	k, med := mediumRig()
	k.Spawn("p", func(p *sim.Proc) {
		if err := med.Read(p, 0, 0, nil); err == nil {
			t.Error("nblk=0 accepted")
		}
		if err := med.Read(p, med.Blocks()-1, 2, make([]byte, 1024)); err == nil {
			t.Error("OOB accepted")
		}
		if err := med.Read(p, 0, 1, make([]byte, 3)); err == nil {
			t.Error("short buffer accepted")
		}
	})
	k.RunAll()
}

func TestMediumLatencyWithinModel(t *testing.T) {
	k := sim.NewKernel()
	params := FlashParams{ReadBaseNs: 8000, JitterNs: 500, TailProb: 1e-12, TailNs: 1, PerBlockNs: 100}
	med := NewFlashMedium(k, 512, 1<<16, params, 5)
	var took sim.Duration
	k.Spawn("p", func(p *sim.Proc) {
		start := p.Now()
		med.Read(p, 0, 8, make([]byte, 4096))
		took = p.Now() - start
	})
	k.RunAll()
	min := params.ReadBaseNs + 7*params.PerBlockNs
	max := min + params.JitterNs
	if took < min || took > max {
		t.Fatalf("latency %d outside [%d,%d]", took, min, max)
	}
}

func TestMediumChannelLimit(t *testing.T) {
	k := sim.NewKernel()
	params := FlashParams{ReadBaseNs: 1000, JitterNs: 1, TailProb: 1e-12, Channels: 2}
	med := NewFlashMedium(k, 512, 1<<16, params, 5)
	var end sim.Time
	for i := 0; i < 4; i++ {
		k.Spawn("r", func(p *sim.Proc) {
			med.Read(p, 0, 1, make([]byte, 512))
			if p.Now() > end {
				end = p.Now()
			}
		})
	}
	k.RunAll()
	// 4 reads, 2 channels => 2 serial batches of ~1000 ns.
	if end < 2000 {
		t.Fatalf("finished at %d, expected >= 2000 with 2 channels", end)
	}
}

func TestMediumDeterminism(t *testing.T) {
	run := func() sim.Time {
		k := sim.NewKernel()
		med := NewFlashMedium(k, 512, 1<<16, FlashParams{}, 1234)
		var end sim.Time
		k.Spawn("p", func(p *sim.Proc) {
			for i := 0; i < 50; i++ {
				med.Read(p, uint64(i), 1, make([]byte, 512))
			}
			end = p.Now()
		})
		k.RunAll()
		return end
	}
	if run() != run() {
		t.Fatal("same seed produced different timing")
	}
}

// Property: sparse medium — data written to one LBA never leaks into
// another.
func TestPropMediumIsolation(t *testing.T) {
	f := func(lbaA, lbaB uint16, a, b byte) bool {
		if lbaA == lbaB {
			return true
		}
		k, med := mediumRig()
		ok := true
		k.Spawn("p", func(p *sim.Proc) {
			bufA := bytes.Repeat([]byte{a}, 512)
			bufB := bytes.Repeat([]byte{b}, 512)
			med.Write(p, uint64(lbaA), 1, bufA)
			med.Write(p, uint64(lbaB), 1, bufB)
			got := make([]byte, 512)
			med.Read(p, uint64(lbaA), 1, got)
			if !bytes.Equal(got, bufA) {
				ok = false
			}
			med.Read(p, uint64(lbaB), 1, got)
			if !bytes.Equal(got, bufB) {
				ok = false
			}
		})
		k.RunAll()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
