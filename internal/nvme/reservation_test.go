package nvme

import (
	"encoding/binary"
	"testing"

	"repro/internal/pcie"
	"repro/internal/sim"
)

// ioQueueN creates I/O queue pair qid in local memory — the two-registrant
// rig for reservation tests, where each queue models a different host's
// path to the shared controller.
func (r *rig) ioQueueN(t *testing.T, p *sim.Proc, a *AdminClient, qid uint16, depth int) *QueueView {
	t.Helper()
	sq, err := r.host.Alloc(uint64(depth*SQESize), PageSize)
	if err != nil {
		t.Fatal(err)
	}
	cq, err := r.host.Alloc(uint64(depth*CQESize), PageSize)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.CreateQueuePair(p, qid, depth, sq, cq, false, 0); err != nil {
		t.Fatalf("create qp %d: %v", qid, err)
	}
	return NewQueueView(qid, depth, sq, cq,
		rigBARBase+SQTailDoorbell(qid, a.DSTRD), rigBARBase+CQHeadDoorbell(qid, a.DSTRD))
}

// resvExec stages two 8-byte key values into buf and executes a
// reservation command from q, returning the completion.
func resvExec(t *testing.T, p *sim.Proc, r *rig, q *QueueView, buf pcie.Addr,
	opcode uint8, cdw10, cdw15 uint32, d0, d1 uint64) CQE {
	t.Helper()
	data := make([]byte, 16)
	binary.LittleEndian.PutUint64(data[0:], d0)
	binary.LittleEndian.PutUint64(data[8:], d1)
	if err := r.host.Write(p, buf, data); err != nil {
		t.Fatalf("stage keys: %v", err)
	}
	cmd := SQE{Opcode: opcode, NSID: 1, PRP1: uint64(buf), CDW10: cdw10, CDW15: cdw15}
	return execIO(t, p, r.host, q, &cmd)
}

// resvOp is one scripted step of a conformance case: a reservation or I/O
// command from one of two queues with its expected status code.
type resvOp struct {
	q      int // 1 or 2
	opcode uint8
	cdw10  uint32
	d0, d1 uint64 // staged key data (CRKEY / NRKEY-or-PRKEY)
	wantSC uint8
}

func acquireCDW10(action int, rtype uint8) uint32 {
	return uint32(action) | uint32(rtype)<<ResvRTYPEShift
}

// TestReservationConformance scripts the reservation state machine per
// spec semantics: register → acquire → foreign-write conflict, release,
// registrants-only types, preempt-and-abort, unregister-releases-holder,
// wrong-key rejection, and clear.
func TestReservationConformance(t *testing.T) {
	const (
		k1 = 0xAAA1
		k2 = 0xBBB2
		k3 = 0xCCC3
	)
	write := resvOp{opcode: IOWrite, cdw10: 0} // 1 block at LBA 0 (CDW12 zero)
	read := resvOp{opcode: IORead, cdw10: 0}
	cases := []struct {
		name  string
		steps []resvOp
	}{
		{
			name: "register-acquire-foreign-write-conflict",
			steps: []resvOp{
				{q: 1, opcode: IOResvRegister, cdw10: ResvRegisterKey, d1: k1},
				{q: 1, opcode: IOResvAcquire, cdw10: acquireCDW10(ResvAcquireAct, ResvWriteExclusive), d0: k1},
				{q: 2, opcode: write.opcode, wantSC: SCReservationConflict},
				{q: 2, opcode: read.opcode}, // WE still allows foreign reads
				{q: 1, opcode: write.opcode},
			},
		},
		{
			name: "exclusive-access-fences-reads-too",
			steps: []resvOp{
				{q: 1, opcode: IOResvRegister, cdw10: ResvRegisterKey, d1: k1},
				{q: 1, opcode: IOResvAcquire, cdw10: acquireCDW10(ResvAcquireAct, ResvExclusiveAccess), d0: k1},
				{q: 2, opcode: read.opcode, wantSC: SCReservationConflict},
				{q: 2, opcode: write.opcode, wantSC: SCReservationConflict},
				{q: 1, opcode: read.opcode},
			},
		},
		{
			name: "release-reopens-the-namespace",
			steps: []resvOp{
				{q: 1, opcode: IOResvRegister, cdw10: ResvRegisterKey, d1: k1},
				{q: 1, opcode: IOResvAcquire, cdw10: acquireCDW10(ResvAcquireAct, ResvWriteExclusive), d0: k1},
				{q: 2, opcode: write.opcode, wantSC: SCReservationConflict},
				{q: 1, opcode: IOResvRelease, cdw10: acquireCDW10(ResvReleaseAct, ResvWriteExclusive), d0: k1},
				{q: 2, opcode: write.opcode},
			},
		},
		{
			name: "registrants-only-admits-registered-writers",
			steps: []resvOp{
				{q: 1, opcode: IOResvRegister, cdw10: ResvRegisterKey, d1: k1},
				{q: 1, opcode: IOResvAcquire, cdw10: acquireCDW10(ResvAcquireAct, ResvWriteExclusiveRegOnly), d0: k1},
				{q: 2, opcode: write.opcode, wantSC: SCReservationConflict},
				{q: 2, opcode: IOResvRegister, cdw10: ResvRegisterKey, d1: k2},
				{q: 2, opcode: write.opcode},
			},
		},
		{
			name: "preempt-and-abort-fences-the-stale-holder",
			steps: []resvOp{
				{q: 1, opcode: IOResvRegister, cdw10: ResvRegisterKey, d1: k1},
				{q: 1, opcode: IOResvAcquire, cdw10: acquireCDW10(ResvAcquireAct, ResvWriteExclusive), d0: k1},
				{q: 2, opcode: IOResvRegister, cdw10: ResvRegisterKey, d1: k2},
				// q2 takes over: preempt-and-abort removes q1's registration
				// and transfers the reservation.
				{q: 2, opcode: IOResvAcquire, cdw10: acquireCDW10(ResvPreemptAndAbort, ResvWriteExclusive), d0: k2, d1: k1},
				{q: 1, opcode: write.opcode, wantSC: SCReservationConflict},
				{q: 2, opcode: write.opcode},
				// Re-registering does not restore write rights under WE.
				{q: 1, opcode: IOResvRegister, cdw10: ResvRegisterKey, d1: k1},
				{q: 1, opcode: write.opcode, wantSC: SCReservationConflict},
			},
		},
		{
			name: "unregister-releases-a-held-reservation",
			steps: []resvOp{
				{q: 1, opcode: IOResvRegister, cdw10: ResvRegisterKey, d1: k1},
				{q: 1, opcode: IOResvAcquire, cdw10: acquireCDW10(ResvAcquireAct, ResvWriteExclusive), d0: k1},
				{q: 1, opcode: IOResvRegister, cdw10: ResvUnregisterKey, d0: k1},
				{q: 2, opcode: write.opcode},
			},
		},
		{
			name: "wrong-key-operations-conflict",
			steps: []resvOp{
				{q: 1, opcode: IOResvRegister, cdw10: ResvRegisterKey, d1: k1},
				{q: 1, opcode: IOResvAcquire, cdw10: acquireCDW10(ResvAcquireAct, ResvWriteExclusive), d0: k3, wantSC: SCReservationConflict},
				{q: 1, opcode: IOResvRegister, cdw10: ResvRegisterKey, d1: k3, wantSC: SCReservationConflict},
				{q: 2, opcode: IOResvAcquire, cdw10: acquireCDW10(ResvAcquireAct, ResvWriteExclusive), d0: k2, wantSC: SCReservationConflict},
				{q: 1, opcode: IOResvRegister, cdw10: ResvReplaceKey, d0: k1, d1: k3},
				{q: 1, opcode: IOResvAcquire, cdw10: acquireCDW10(ResvAcquireAct, ResvWriteExclusive), d0: k3},
			},
		},
		{
			name: "preempt-without-matching-victim-conflicts",
			steps: []resvOp{
				{q: 1, opcode: IOResvRegister, cdw10: ResvRegisterKey, d1: k1},
				{q: 2, opcode: IOResvRegister, cdw10: ResvRegisterKey, d1: k2},
				{q: 2, opcode: IOResvAcquire, cdw10: acquireCDW10(ResvPreempt, ResvWriteExclusive), d0: k2, d1: k3, wantSC: SCReservationConflict},
			},
		},
		{
			name: "clear-drops-reservation-and-registrations",
			steps: []resvOp{
				{q: 1, opcode: IOResvRegister, cdw10: ResvRegisterKey, d1: k1},
				{q: 2, opcode: IOResvRegister, cdw10: ResvRegisterKey, d1: k2},
				{q: 1, opcode: IOResvAcquire, cdw10: acquireCDW10(ResvAcquireAct, ResvExclusiveAccessRegOnly), d0: k1},
				{q: 1, opcode: IOResvRelease, cdw10: ResvClearAct, d0: k1},
				// Everyone is unregistered: acquire without register conflicts.
				{q: 2, opcode: IOResvAcquire, cdw10: acquireCDW10(ResvAcquireAct, ResvWriteExclusive), d0: k2, wantSC: SCReservationConflict},
				{q: 2, opcode: write.opcode},
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := newRig(t)
			r.run(t, func(p *sim.Proc) {
				a := r.enable(t, p)
				queues := map[int]*QueueView{
					1: r.ioQueueN(t, p, a, 1, 8),
					2: r.ioQueueN(t, p, a, 2, 8),
				}
				buf, err := r.host.Alloc(PageSize, PageSize)
				if err != nil {
					t.Fatal(err)
				}
				for i, step := range tc.steps {
					var cqe CQE
					switch step.opcode {
					case IOWrite, IORead:
						data, err := r.host.Alloc(512, PageSize)
						if err != nil {
							t.Fatal(err)
						}
						cmd := SQE{Opcode: step.opcode, NSID: 1, PRP1: uint64(data), CDW10: step.cdw10}
						cqe = execIO(t, p, r.host, queues[step.q], &cmd)
					default:
						cqe = resvExec(t, p, r, queues[step.q], buf,
							step.opcode, step.cdw10, 0, step.d0, step.d1)
					}
					sct, sc := cqe.StatusCode()
					if sct != SCTGeneric || sc != step.wantSC {
						t.Fatalf("step %d (q%d op %#x): status (%d,%#x), want (0,%#x)",
							i, step.q, step.opcode, sct, sc, step.wantSC)
					}
				}
			})
		})
	}
}

// TestReservationFencedWriteNeverReachesMedium pins the acceptance
// criterion directly: a fenced writer's data must not land, byte-checked
// against the medium.
func TestReservationFencedWriteNeverReachesMedium(t *testing.T) {
	r := newRig(t)
	r.run(t, func(p *sim.Proc) {
		a := r.enable(t, p)
		q1 := r.ioQueueN(t, p, a, 1, 8)
		q2 := r.ioQueueN(t, p, a, 2, 8)
		keys, err := r.host.Alloc(PageSize, PageSize)
		if err != nil {
			t.Fatal(err)
		}
		// q1 writes a known pattern, then acquires Write Exclusive.
		data, err := r.host.Alloc(512, PageSize)
		if err != nil {
			t.Fatal(err)
		}
		want := make([]byte, 512)
		for i := range want {
			want[i] = 0x5A
		}
		if err := r.host.Write(p, data, want); err != nil {
			t.Fatal(err)
		}
		cmd := SQE{Opcode: IOWrite, NSID: 1, PRP1: uint64(data), CDW10: 7}
		if cqe := execIO(t, p, r.host, q1, &cmd); !cqe.OK() {
			t.Fatalf("baseline write: %#x", cqe.Status())
		}
		resvExec(t, p, r, q1, keys, IOResvRegister, ResvRegisterKey, 0, 0, 0xF1)
		resvExec(t, p, r, q1, keys, IOResvAcquire, acquireCDW10(ResvAcquireAct, ResvWriteExclusive), 0, 0xF1, 0)
		// q2's overwrite attempt is fenced...
		evil, err := r.host.Alloc(512, PageSize)
		if err != nil {
			t.Fatal(err)
		}
		poison := make([]byte, 512)
		for i := range poison {
			poison[i] = 0xFF
		}
		if err := r.host.Write(p, evil, poison); err != nil {
			t.Fatal(err)
		}
		wcmd := SQE{Opcode: IOWrite, NSID: 1, PRP1: uint64(evil), CDW10: 7}
		cqe := execIO(t, p, r.host, q2, &wcmd)
		if _, sc := cqe.StatusCode(); sc != SCReservationConflict {
			t.Fatalf("stale write status %#x, want reservation conflict", cqe.Status())
		}
		// ...and the medium still holds q1's pattern.
		got := make([]byte, 512)
		if err := r.med.Read(p, 7, 1, got); err != nil {
			t.Fatal(err)
		}
		for i := range got {
			if got[i] != 0x5A {
				t.Fatalf("medium byte %d = %#x after fenced write, want 0x5A", i, got[i])
			}
		}
		if r.ctrl.Stats.ResvConflicts == 0 {
			t.Error("ResvConflicts counter not incremented")
		}
		if before := r.ctrl.Stats.WriteCmds; before != 1 {
			t.Errorf("WriteCmds = %d, fenced write must not count", before)
		}
	})
}

// TestReservationReportLayout checks the report wire format end to end:
// generation counter, held type, registrant entries in qid order, host
// identity from CDW15, and NUMD truncation.
func TestReservationReportLayout(t *testing.T) {
	r := newRig(t)
	r.run(t, func(p *sim.Proc) {
		a := r.enable(t, p)
		q1 := r.ioQueueN(t, p, a, 1, 8)
		q2 := r.ioQueueN(t, p, a, 2, 8)
		keys, err := r.host.Alloc(PageSize, PageSize)
		if err != nil {
			t.Fatal(err)
		}
		resvExec(t, p, r, q1, keys, IOResvRegister, ResvRegisterKey, 11, 0, 0xA1)
		resvExec(t, p, r, q2, keys, IOResvRegister, ResvRegisterKey, 22, 0, 0xB2)
		resvExec(t, p, r, q1, keys, IOResvAcquire, acquireCDW10(ResvAcquireAct, ResvWriteExclusive), 0, 0xA1, 0)

		rep, err := r.host.Alloc(PageSize, PageSize)
		if err != nil {
			t.Fatal(err)
		}
		full := ResvStatusHdrSize + 2*ResvRegistrantSize
		numd := uint32(full/4 - 1) // 0-based dwords covering the whole report
		cmd := SQE{Opcode: IOResvReport, NSID: 1, PRP1: uint64(rep), CDW10: numd}
		if cqe := execIO(t, p, r.host, q1, &cmd); !cqe.OK() {
			t.Fatalf("report: %#x", cqe.Status())
		}
		raw := make([]byte, full)
		if err := r.host.Read(p, rep, raw); err != nil {
			t.Fatal(err)
		}
		st := UnmarshalResvStatus(raw)
		if st.Gen != 2 {
			t.Errorf("gen = %d, want 2 (two registrations; acquire does not bump it)", st.Gen)
		}
		if st.RType != ResvWriteExclusive {
			t.Errorf("rtype = %d, want %d", st.RType, ResvWriteExclusive)
		}
		want := []ResvRegistrant{
			{CNTLID: 1, Holder: true, HostID: 11, RKey: 0xA1},
			{CNTLID: 2, Holder: false, HostID: 22, RKey: 0xB2},
		}
		if len(st.Regs) != len(want) {
			t.Fatalf("registrants = %+v, want %+v", st.Regs, want)
		}
		for i := range want {
			if st.Regs[i] != want[i] {
				t.Errorf("registrant %d = %+v, want %+v", i, st.Regs[i], want[i])
			}
		}

		// Raw offsets per spec: GEN at 0, RTYPE at 4, REGCTL at 5, first
		// entry at 24 with CNTLID at +0, RCSTS at +2, RKEY at +16.
		if got := binary.LittleEndian.Uint32(raw[0:]); got != 2 {
			t.Errorf("raw GEN = %d", got)
		}
		if raw[4] != ResvWriteExclusive {
			t.Errorf("raw RTYPE = %d", raw[4])
		}
		if got := binary.LittleEndian.Uint16(raw[5:]); got != 2 {
			t.Errorf("raw REGCTL = %d", got)
		}
		if got := binary.LittleEndian.Uint16(raw[24:]); got != 1 {
			t.Errorf("raw entry0 CNTLID = %d", got)
		}
		if raw[24+2]&1 != 1 {
			t.Error("raw entry0 RCSTS holder bit clear")
		}
		if got := binary.LittleEndian.Uint64(raw[24+16:]); got != 0xA1 {
			t.Errorf("raw entry0 RKEY = %#x", got)
		}

		// A short NUMD truncates: ask for header + one entry only.
		short := ResvStatusHdrSize + ResvRegistrantSize
		cmd = SQE{Opcode: IOResvReport, NSID: 1, PRP1: uint64(rep), CDW10: uint32(short/4 - 1)}
		if cqe := execIO(t, p, r.host, q1, &cmd); !cqe.OK() {
			t.Fatalf("short report: %#x", cqe.Status())
		}
		raw = make([]byte, short)
		if err := r.host.Read(p, rep, raw); err != nil {
			t.Fatal(err)
		}
		st = UnmarshalResvStatus(raw)
		if len(st.Regs) != 1 || st.Regs[0].CNTLID != 1 {
			t.Errorf("truncated report regs = %+v, want just CNTLID 1", st.Regs)
		}
	})
}

// TestReservationQueueDeleteDropsRegistration pins the qid-reuse hazard:
// deleting a registrant's SQ must drop its registration so a later client
// granted the same qid does not inherit reservation rights.
func TestReservationQueueDeleteDropsRegistration(t *testing.T) {
	r := newRig(t)
	r.run(t, func(p *sim.Proc) {
		a := r.enable(t, p)
		q1 := r.ioQueueN(t, p, a, 1, 8)
		r.ioQueueN(t, p, a, 2, 8)
		keys, err := r.host.Alloc(PageSize, PageSize)
		if err != nil {
			t.Fatal(err)
		}
		resvExec(t, p, r, q1, keys, IOResvRegister, ResvRegisterKey, 0, 0, 0xA1)
		resvExec(t, p, r, q1, keys, IOResvAcquire, acquireCDW10(ResvAcquireAct, ResvWriteExclusive), 0, 0xA1, 0)
		genBefore := r.ctrl.ResvStatus().Gen
		if err := a.DeleteQueuePair(p, 1); err != nil {
			t.Fatalf("delete qp: %v", err)
		}
		st := r.ctrl.ResvStatus()
		if st.RType != 0 {
			t.Errorf("reservation survives holder's queue deletion (rtype %d)", st.RType)
		}
		if len(st.Regs) != 0 {
			t.Errorf("registration survives queue deletion: %+v", st.Regs)
		}
		if st.Gen <= genBefore {
			t.Errorf("gen %d not bumped past %d by implicit unregister", st.Gen, genBefore)
		}
	})
}
