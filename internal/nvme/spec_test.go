package nvme

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestSQERoundTrip(t *testing.T) {
	e := SQE{
		Opcode: IOWrite, Flags: 0x40, CID: 0xBEEF, NSID: 1,
		MPTR: 0x1111, PRP1: 0x2000, PRP2: 0x3000,
		CDW10: 10, CDW11: 11, CDW12: 12, CDW13: 13, CDW14: 14, CDW15: 15,
	}
	b := e.Marshal()
	if len(b) != SQESize {
		t.Fatalf("len = %d, want %d", len(b), SQESize)
	}
	got := UnmarshalSQE(b)
	if got != e {
		t.Fatalf("round trip: got %+v, want %+v", got, e)
	}
}

func TestCQERoundTrip(t *testing.T) {
	c := CQE{DW0: 0x12345678, SQHead: 7, SQID: 3, CID: 42, StatusPhase: Status(SCTGeneric, SCInvalidNS)<<1 | 1}
	b := c.Marshal()
	if len(b) != CQESize {
		t.Fatalf("len = %d, want %d", len(b), CQESize)
	}
	got := UnmarshalCQE(b)
	if got != c {
		t.Fatalf("round trip: got %+v, want %+v", got, c)
	}
	if !got.Phase() {
		t.Fatal("phase lost")
	}
	sct, sc := got.StatusCode()
	if sct != SCTGeneric || sc != SCInvalidNS {
		t.Fatalf("status code (%d,%#x)", sct, sc)
	}
	if got.OK() {
		t.Fatal("error status reported OK")
	}
}

func TestStatusPacking(t *testing.T) {
	if Status(SCTGeneric, SCSuccess) != 0 {
		t.Fatal("success status must be 0")
	}
	s := Status(SCTCmdSpecific, SCInvalidQID)
	if s != 1<<8|1 {
		t.Fatalf("status = %#x", s)
	}
}

func TestDoorbellOffsets(t *testing.T) {
	if SQTailDoorbell(0, 0) != 0x1000 {
		t.Fatalf("SQ0 db = %#x", SQTailDoorbell(0, 0))
	}
	if CQHeadDoorbell(0, 0) != 0x1004 {
		t.Fatalf("CQ0 db = %#x", CQHeadDoorbell(0, 0))
	}
	if SQTailDoorbell(1, 0) != 0x1008 {
		t.Fatalf("SQ1 db = %#x", SQTailDoorbell(1, 0))
	}
	// Stride 1 doubles spacing.
	if SQTailDoorbell(1, 1) != 0x1000+2*8 {
		t.Fatalf("SQ1 db stride1 = %#x", SQTailDoorbell(1, 1))
	}
}

func TestIdentifyControllerRoundTrip(t *testing.T) {
	id := IdentifyController{
		VID: 0x8086, SSVID: 0x8086,
		Serial: "SN123", Model: "Test Model", Firmware: "FW1",
		NN: 4,
	}
	got := UnmarshalIdentifyController(MarshalIdentifyController(id))
	if got.VID != id.VID || got.Serial != id.Serial || got.Model != id.Model ||
		got.Firmware != id.Firmware || got.NN != id.NN {
		t.Fatalf("got %+v, want %+v", got, id)
	}
}

func TestIdentifyNamespaceRoundTrip(t *testing.T) {
	ns := IdentifyNamespace{NSZE: 1 << 30, NCAP: 1 << 30, NUSE: 55, LBADS: 9}
	got := UnmarshalIdentifyNamespace(MarshalIdentifyNamespace(ns))
	if got != ns {
		t.Fatalf("got %+v, want %+v", got, ns)
	}
}

func TestLog2(t *testing.T) {
	cases := map[int]uint8{1: 0, 2: 1, 512: 9, 4096: 12}
	for n, want := range cases {
		if got := log2(n); got != want {
			t.Fatalf("log2(%d) = %d, want %d", n, got, want)
		}
	}
}

// Property: SQE marshal/unmarshal is the identity for all field values.
func TestPropSQERoundTrip(t *testing.T) {
	f := func(op, fl uint8, cid uint16, nsid uint32, mptr, p1, p2 uint64, d10, d11, d12, d13, d14, d15 uint32) bool {
		e := SQE{op, fl, cid, nsid, mptr, p1, p2, d10, d11, d12, d13, d14, d15}
		return UnmarshalSQE(e.Marshal()) == e
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: CQE marshal/unmarshal is the identity.
func TestPropCQERoundTrip(t *testing.T) {
	f := func(dw0 uint32, h, q, cid, sp uint16) bool {
		c := CQE{dw0, h, q, cid, sp}
		return UnmarshalCQE(c.Marshal()) == c
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: marshaled identify structures always occupy exactly one page.
func TestPropIdentifySizes(t *testing.T) {
	f := func(serial string, nn uint32) bool {
		b := MarshalIdentifyController(IdentifyController{Serial: serial, NN: nn})
		return len(b) == PageSize
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestTrimPadded(t *testing.T) {
	if got := trimPadded([]byte("ab  ")); got != "ab" {
		t.Fatalf("got %q", got)
	}
	if got := trimPadded([]byte{0, 0}); got != "" {
		t.Fatalf("got %q", got)
	}
	if got := trimPadded(bytes.NewBufferString("x").Bytes()); got != "x" {
		t.Fatalf("got %q", got)
	}
}

func TestONCSAdvertisement(t *testing.T) {
	id := IdentifyController{ONCS: ONCSCompare | ONCSWriteZeroes | ONCSDSM | ONCSReservations, OACS: OACSGetLogPage}
	got := UnmarshalIdentifyController(MarshalIdentifyController(id))
	if !got.SupportsCompare() || !got.SupportsWriteZeroes() || !got.SupportsDSM() || !got.SupportsReservations() {
		t.Fatalf("ONCS lost in round trip: %+v", got)
	}
	if got.OACS != OACSGetLogPage {
		t.Fatalf("OACS lost: %#x", got.OACS)
	}
	none := UnmarshalIdentifyController(MarshalIdentifyController(IdentifyController{}))
	if none.SupportsCompare() || none.SupportsWriteZeroes() || none.SupportsDSM() || none.SupportsReservations() {
		t.Fatal("zero ONCS advertises optional commands")
	}
}
