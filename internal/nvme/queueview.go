package nvme

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/pcie"
	"repro/internal/sim"
	"repro/internal/trace"
)

// ErrDoorbellLost marks a submission whose SQE reached the ring but whose
// tail doorbell write failed in the fabric. The command is committed: it
// sits in the SQ and will execute as soon as a later doorbell carries a
// newer cumulative tail, so the caller must treat its CID like a
// timed-out command (quarantine its buffers until the completion drains),
// not like a clean submission failure.
var ErrDoorbellLost = errors.New("nvme: SQ doorbell lost after SQE commit")

// QueueView is the driver-side state for operating one SQ/CQ pair. All
// addresses are expressed in the *driver host's* domain — for a remote
// controller they are NTB window addresses; the fabric handles the rest.
// This is the object both the local baseline driver and the distributed
// driver's clients operate queues through; it performs no locking because
// NVMe queues are single-owner by design (paper §II).
type QueueView struct {
	ID   uint16
	Size int
	// SQAddr and CQAddr locate queue memory as seen from the driver host.
	SQAddr pcie.Addr
	CQAddr pcie.Addr
	// SQDoorbell and CQDoorbell locate the doorbell registers as seen
	// from the driver host (BAR or BAR-window addresses).
	SQDoorbell pcie.Addr
	CQDoorbell pcie.Addr

	// CoalesceSQ defers the SQ tail doorbell while other submitters are
	// queued on the lock: the last submitter of a burst rings once with
	// the cumulative tail, like blk-mq's commit_rqs/bd->last batching.
	// Requires EnableLocking; with a single submitter (QD1) no waiter is
	// ever present, so behavior is identical to per-command ringing.
	CoalesceSQ bool
	// LazyCQ defers the CQ head doorbell from Poll to FlushCQ, so one
	// poll sweep rings once for all entries it consumed (the SPDK
	// adminq/io-qpair strategy). Pollers must FlushCQ before blocking:
	// the controller stalls completion DMA while its view of the CQ is
	// full, and only a head doorbell unsticks it.
	LazyCQ bool

	// SQDoorbells and CQDoorbells count actual doorbell MMIO writes, for
	// observing coalescing ratios in tests and benchmarks.
	SQDoorbells uint64
	CQDoorbells uint64
	// Coalescing-effectiveness counters. SQDoorbellsSaved counts
	// submissions whose tail doorbell was deferred to a later submitter
	// (an MMIO write that never happened). CQRingsSaved counts CQ head
	// doorbells avoided by lazy ringing: a FlushCQ covering k consumed
	// entries saves k-1 individual rings. Both stay zero at QD1.
	SQDoorbellsSaved uint64
	CQRingsSaved     uint64

	// Fault injection, armed by the fault plane. DropSQDoorbells makes
	// the next N Ring calls lose their doorbell MMIO in the fabric (the
	// cumulative tail means a later ring recovers the queued entries);
	// DelaySQDoorbells stalls the next N doorbell writes by
	// DelaySQDoorbellNs each. SQDoorbellsDropped / SQDoorbellsDelayed
	// count injections actually taken.
	DropSQDoorbells    int
	DelaySQDoorbells   int
	DelaySQDoorbellNs  int64
	SQDoorbellsDropped uint64
	SQDoorbellsDelayed uint64

	// Tracer, when non-nil, records per-command fabric hops (SQE write,
	// doorbell, NTB crossing, CQE poll) keyed by (ID, CID). Nil — the
	// default — costs one pointer check per operation.
	Tracer *trace.Tracer

	sqTail     int
	sqDeferred bool // tail advanced past the last rung doorbell
	cqHead     int
	cqUnrung   int // entries consumed since the last CQ doorbell
	phase      bool
	// inflight counts submitted-but-not-completed commands.
	inflight int
	nextCID  uint16
	// lock serializes the SQE-write + doorbell sequence across concurrent
	// submitters on the same host, as a kernel driver's per-queue spinlock
	// does. Nil means single-submitter use (no locking).
	lock *sim.Semaphore
}

// NewQueueView initializes driver-side state for a queue pair of the given
// size. The expected initial phase is 1, per spec.
func NewQueueView(id uint16, size int, sqAddr, cqAddr, sqDB, cqDB pcie.Addr) *QueueView {
	return &QueueView{
		ID: id, Size: size,
		SQAddr: sqAddr, CQAddr: cqAddr,
		SQDoorbell: sqDB, CQDoorbell: cqDB,
		phase: true,
	}
}

// EnableLocking makes Submit safe for multiple concurrent submitting
// processes on k.
func (q *QueueView) EnableLocking(k *sim.Kernel) {
	q.lock = sim.NewSemaphore(k, 1)
}

// Inflight returns the number of outstanding commands.
func (q *QueueView) Inflight() int { return q.inflight }

// Full reports whether another submission would overrun the SQ.
func (q *QueueView) Full() bool { return q.inflight >= q.Size-1 }

// NextCID returns a fresh command identifier.
func (q *QueueView) NextCID() uint16 {
	q.nextCID++
	return q.nextCID
}

// Submit writes cmd into the next SQ slot and rings the tail doorbell.
// The SQE write and the doorbell write are both posted; PCIe ordering
// guarantees the entry is visible to the controller before the doorbell
// (§V of the paper relies on this across the NTB).
func (q *QueueView) Submit(p *sim.Proc, h *pcie.HostPort, cmd *SQE) error {
	tr := q.Tracer
	t0 := p.Now()
	if q.lock != nil {
		p.Acquire(q.lock)
		defer q.lock.Release()
	}
	if q.Full() {
		// Ring any deferred tail before bailing: the entries behind it
		// must reach the controller for the queue to ever drain.
		if q.sqDeferred {
			q.Ring(p, h)
		}
		return fmt.Errorf("nvme: queue %d full", q.ID)
	}
	slot := q.sqTail
	q.sqTail = (q.sqTail + 1) % q.Size
	q.inflight++
	if err := h.Write(p, q.SQAddr+pcie.Addr(slot*SQESize), cmd.Marshal()); err != nil {
		// The SQE never left this host (resolution failed synchronously),
		// so roll the ring state back: nothing is committed.
		q.sqTail = slot
		q.inflight--
		return err
	}
	tr.Hop(q.ID, cmd.CID, trace.StageSQWrite, t0, p.Now())
	if q.CoalesceSQ && q.lock != nil && q.lock.Waiters() > 0 {
		// Another submitter is already blocked on the lock; let it carry
		// (or further defer) the doorbell for this entry too.
		q.sqDeferred = true
		q.SQDoorbellsSaved++
		if tr != nil {
			now := p.Now()
			tr.HopNote(q.ID, cmd.CID, trace.StageSQDoorbell, now, now, trace.NoteCoalesced)
		}
		return nil
	}
	if tr == nil {
		if err := q.Ring(p, h); err != nil {
			return fmt.Errorf("%w (%w)", ErrDoorbellLost, err)
		}
		return nil
	}
	td := p.Now()
	if err := q.Ring(p, h); err != nil {
		return fmt.Errorf("%w (%w)", ErrDoorbellLost, err)
	}
	tr.Hop(q.ID, cmd.CID, trace.StageSQDoorbell, td, p.Now())
	// Annotate the doorbell TLP's fabric flight when it crosses NTBs: the
	// write is posted, so the flight happens after the CPU moves on.
	if cross, oneWay := h.PathInfo(q.SQDoorbell, 4); cross > 0 {
		now := p.Now()
		tr.HopNote(q.ID, cmd.CID, trace.StageNTBCross, now, now+oneWay, uint64(cross))
	}
	return nil
}

// Ring rings the SQ doorbell with the current tail, committing any
// deferred submissions (used after batched SQE writes and by the last
// submitter of a coalesced burst).
func (q *QueueView) Ring(p *sim.Proc, h *pcie.HostPort) error {
	if q.DropSQDoorbells > 0 {
		// Injected fault: the driver performed the MMIO but the fabric
		// lost the posted write. The tail stays advanced past the
		// controller's view until the next ring, whose cumulative tail
		// recovers every queued entry — so mark it deferred.
		q.DropSQDoorbells--
		q.SQDoorbellsDropped++
		q.SQDoorbells++
		q.sqDeferred = true
		return nil
	}
	if q.DelaySQDoorbells > 0 {
		q.DelaySQDoorbells--
		q.SQDoorbellsDelayed++
		p.Sleep(q.DelaySQDoorbellNs)
	}
	q.sqDeferred = false
	q.SQDoorbells++
	var db [4]byte
	binary.LittleEndian.PutUint32(db[:], uint32(q.sqTail))
	return h.Write(p, q.SQDoorbell, db[:])
}

// Poll checks the current CQ head slot for a new completion. It consumes
// and returns the entry if its phase matches, advancing the head and
// ringing the CQ head doorbell. Costs one local access (or a fabric read
// for a remote CQ).
func (q *QueueView) Poll(p *sim.Proc, h *pcie.HostPort) (CQE, bool, error) {
	t0 := p.Now()
	buf := make([]byte, CQESize)
	if err := h.Read(p, q.CQAddr+pcie.Addr(q.cqHead*CQESize), buf); err != nil {
		return CQE{}, false, err
	}
	cqe := UnmarshalCQE(buf)
	if cqe.Phase() != q.phase {
		return CQE{}, false, nil
	}
	q.cqHead++
	if q.cqHead == q.Size {
		q.cqHead = 0
		q.phase = !q.phase
	}
	q.inflight--
	q.Tracer.Hop(q.ID, cqe.CID, trace.StageCQPoll, t0, p.Now())
	if q.LazyCQ {
		q.cqUnrung++
		return cqe, true, nil
	}
	q.CQDoorbells++
	var db [4]byte
	binary.LittleEndian.PutUint32(db[:], uint32(q.cqHead))
	if err := h.Write(p, q.CQDoorbell, db[:]); err != nil {
		return CQE{}, false, err
	}
	return cqe, true, nil
}

// FlushCQ rings the CQ head doorbell once for all entries consumed since
// the last flush. No-op when nothing is pending. LazyCQ pollers must call
// it at the end of each sweep, before blocking.
func (q *QueueView) FlushCQ(p *sim.Proc, h *pcie.HostPort) error {
	if q.cqUnrung == 0 {
		return nil
	}
	var db [4]byte
	binary.LittleEndian.PutUint32(db[:], uint32(q.cqHead))
	if err := h.Write(p, q.CQDoorbell, db[:]); err != nil {
		// Keep cqUnrung so a retried flush after a transient fabric fault
		// still delivers the head update the controller is waiting on.
		return err
	}
	// One ring covers q.cqUnrung consumed entries; all but the first
	// would have been individual doorbells without LazyCQ.
	q.CQRingsSaved += uint64(q.cqUnrung - 1)
	q.cqUnrung = 0
	q.CQDoorbells++
	return nil
}

// CQRange returns the address range of the CQ ring (for Watch).
func (q *QueueView) CQRange() pcie.Range {
	return pcie.Range{Base: q.CQAddr, Size: uint64(q.Size * CQESize)}
}
