package nvme

import (
	"encoding/binary"
	"fmt"

	"repro/internal/pcie"
	"repro/internal/sim"
)

// QueueView is the driver-side state for operating one SQ/CQ pair. All
// addresses are expressed in the *driver host's* domain — for a remote
// controller they are NTB window addresses; the fabric handles the rest.
// This is the object both the local baseline driver and the distributed
// driver's clients operate queues through; it performs no locking because
// NVMe queues are single-owner by design (paper §II).
type QueueView struct {
	ID   uint16
	Size int
	// SQAddr and CQAddr locate queue memory as seen from the driver host.
	SQAddr pcie.Addr
	CQAddr pcie.Addr
	// SQDoorbell and CQDoorbell locate the doorbell registers as seen
	// from the driver host (BAR or BAR-window addresses).
	SQDoorbell pcie.Addr
	CQDoorbell pcie.Addr

	sqTail int
	cqHead int
	phase  bool
	// inflight counts submitted-but-not-completed commands.
	inflight int
	nextCID  uint16
	// lock serializes the SQE-write + doorbell sequence across concurrent
	// submitters on the same host, as a kernel driver's per-queue spinlock
	// does. Nil means single-submitter use (no locking).
	lock *sim.Semaphore
}

// NewQueueView initializes driver-side state for a queue pair of the given
// size. The expected initial phase is 1, per spec.
func NewQueueView(id uint16, size int, sqAddr, cqAddr, sqDB, cqDB pcie.Addr) *QueueView {
	return &QueueView{
		ID: id, Size: size,
		SQAddr: sqAddr, CQAddr: cqAddr,
		SQDoorbell: sqDB, CQDoorbell: cqDB,
		phase: true,
	}
}

// EnableLocking makes Submit safe for multiple concurrent submitting
// processes on k.
func (q *QueueView) EnableLocking(k *sim.Kernel) {
	q.lock = sim.NewSemaphore(k, 1)
}

// Inflight returns the number of outstanding commands.
func (q *QueueView) Inflight() int { return q.inflight }

// Full reports whether another submission would overrun the SQ.
func (q *QueueView) Full() bool { return q.inflight >= q.Size-1 }

// NextCID returns a fresh command identifier.
func (q *QueueView) NextCID() uint16 {
	q.nextCID++
	return q.nextCID
}

// Submit writes cmd into the next SQ slot and rings the tail doorbell.
// The SQE write and the doorbell write are both posted; PCIe ordering
// guarantees the entry is visible to the controller before the doorbell
// (§V of the paper relies on this across the NTB).
func (q *QueueView) Submit(p *sim.Proc, h *pcie.HostPort, cmd *SQE) error {
	if q.lock != nil {
		p.Acquire(q.lock)
		defer q.lock.Release()
	}
	if q.Full() {
		return fmt.Errorf("nvme: queue %d full", q.ID)
	}
	slot := q.sqTail
	q.sqTail = (q.sqTail + 1) % q.Size
	q.inflight++
	if err := h.Write(p, q.SQAddr+pcie.Addr(slot*SQESize), cmd.Marshal()); err != nil {
		return err
	}
	var db [4]byte
	binary.LittleEndian.PutUint32(db[:], uint32(q.sqTail))
	return h.Write(p, q.SQDoorbell, db[:])
}

// Ring re-rings the SQ doorbell with the current tail (used after batched
// SQE writes).
func (q *QueueView) Ring(p *sim.Proc, h *pcie.HostPort) error {
	var db [4]byte
	binary.LittleEndian.PutUint32(db[:], uint32(q.sqTail))
	return h.Write(p, q.SQDoorbell, db[:])
}

// Poll checks the current CQ head slot for a new completion. It consumes
// and returns the entry if its phase matches, advancing the head and
// ringing the CQ head doorbell. Costs one local access (or a fabric read
// for a remote CQ).
func (q *QueueView) Poll(p *sim.Proc, h *pcie.HostPort) (CQE, bool, error) {
	buf := make([]byte, CQESize)
	if err := h.Read(p, q.CQAddr+pcie.Addr(q.cqHead*CQESize), buf); err != nil {
		return CQE{}, false, err
	}
	cqe := UnmarshalCQE(buf)
	if cqe.Phase() != q.phase {
		return CQE{}, false, nil
	}
	q.cqHead++
	if q.cqHead == q.Size {
		q.cqHead = 0
		q.phase = !q.phase
	}
	q.inflight--
	var db [4]byte
	binary.LittleEndian.PutUint32(db[:], uint32(q.cqHead))
	if err := h.Write(p, q.CQDoorbell, db[:]); err != nil {
		return CQE{}, false, err
	}
	return cqe, true, nil
}

// CQRange returns the address range of the CQ ring (for Watch).
func (q *QueueView) CQRange() pcie.Range {
	return pcie.Range{Base: q.CQAddr, Size: uint64(q.Size * CQESize)}
}
