package nvme

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/attr"
	"repro/internal/ntb"
	"repro/internal/pcie"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Params configures a controller.
type Params struct {
	// MaxQueuePairs counts the admin pair plus I/O pairs. The paper's
	// P4800X supports 32 (31 I/O pairs + admin), letting 31 hosts share
	// the device.
	MaxQueuePairs int
	// MQES is CAP.MQES: maximum queue entries, 0-based.
	MQES uint16
	// CmdOverheadNs is firmware decode/setup per command.
	CmdOverheadNs int64
	// AdminOverheadNs is firmware decode/setup for admin-queue commands
	// specifically; 0 means "same as CmdOverheadNs". Overlay experiments
	// scale it independently to measure how much bring-up cost the admin
	// path contributes (the ROADMAP's admin-queue-sharding question).
	AdminOverheadNs int64
	// CplOverheadNs is firmware completion-path cost per command.
	CplOverheadNs int64
	// EnableDelayNs is the CC.EN -> CSTS.RDY transition time.
	EnableDelayNs int64
	// MaxInflight bounds concurrently executing commands.
	MaxInflight int
	// DSTRD is CAP.DSTRD (doorbell stride exponent).
	DSTRD uint8
	// CMBBytes sizes the Controller Memory Buffer exposed at CMBBase in
	// BAR0 (0 disables it). The BAR must be large enough to cover it.
	CMBBytes uint64
	// CMBAccessNs is the controller's internal access time to CMB memory
	// (SRAM-class; replaces a fabric DMA round trip for queues placed
	// there).
	CMBAccessNs int64
	// LinkRetryNs bounds how long a command fetch or CQE post is retried
	// when the fabric reports a link outage before the controller
	// declares itself fatal (CSTS.CFS). An NTB link flap shorter than
	// this window is ridden out instead of bricking the device for every
	// attached host — the behavior a multi-path volume layer depends on.
	// Default 2 ms.
	LinkRetryNs int64
}

// DefaultParams returns the P4800X-class controller calibration.
func DefaultParams() Params {
	return Params{
		MaxQueuePairs: 32,
		MQES:          1023,
		CmdOverheadNs: 350,
		CplOverheadNs: 150,
		EnableDelayNs: 50_000,
		MaxInflight:   64,
		DSTRD:         0,
	}
}

func (p Params) withDefaults() Params {
	d := DefaultParams()
	if p.MaxQueuePairs == 0 {
		p.MaxQueuePairs = d.MaxQueuePairs
	}
	if p.MQES == 0 {
		p.MQES = d.MQES
	}
	if p.CmdOverheadNs == 0 {
		p.CmdOverheadNs = d.CmdOverheadNs
	}
	if p.CplOverheadNs == 0 {
		p.CplOverheadNs = d.CplOverheadNs
	}
	if p.EnableDelayNs == 0 {
		p.EnableDelayNs = d.EnableDelayNs
	}
	if p.MaxInflight == 0 {
		p.MaxInflight = d.MaxInflight
	}
	if p.CMBAccessNs == 0 {
		p.CMBAccessNs = 60
	}
	if p.LinkRetryNs == 0 {
		p.LinkRetryNs = 2 * sim.Millisecond
	}
	return p
}

// MSIEntry is a configured MSI-X vector: an interrupt is a posted write of
// Data to Addr in the controller's domain.
type MSIEntry struct {
	Addr    pcie.Addr
	Data    uint32
	Enabled bool
}

type subQueue struct {
	id      uint16
	base    pcie.Addr
	size    int
	head    int
	tail    int
	cqid    uint16
	created bool
	// prio is the queue's declared priority class (QPrio*, from Create
	// I/O SQ CDW11 bits 2:1). Only consulted when CC.AMS selects WRR.
	prio uint8
}

type compQueue struct {
	id      uint16
	base    pcie.Addr
	size    int
	tail    int
	phase   bool
	head    int
	ien     bool
	iv      uint16
	created bool
	sqCount int // SQs mapped to this CQ
}

// QueueStats are per-submission-queue counters, the attribution layer
// for multi-host sharing: each host owns its queue pair(s), so a queue's
// counters are that host's share of the device. Telemetry wires these as
// {host,qid}-labeled series.
type QueueStats struct {
	// Fetched counts SQE fetch DMAs issued for this queue.
	Fetched uint64
	// ReadCmds and WriteCmds count successfully executed I/O commands.
	ReadCmds  uint64
	WriteCmds uint64
	// Completions counts CQEs posted to this queue's paired CQ.
	Completions uint64
	// SQDoorbells counts tail doorbell register writes for this queue
	// (the device-side view of this host's ring traffic).
	SQDoorbells uint64
	// CQEsDropped counts completions discarded by fault injection
	// (InjectDropCQEs) for this queue.
	CQEsDropped uint64
	// SQOcc accounts submission-queue occupancy: entries enter at the
	// tail-doorbell write and exit when the arbitration loop claims
	// them, so its residence time is exactly the SQ queueing delay.
	SQOcc attr.Occ
	// CQOcc accounts completion-queue occupancy (indexed by CQ ID,
	// which pairs 1:1 with the SQ ID here): entries enter when the CQE
	// posts and exit at the host's CQ head-doorbell write.
	CQOcc attr.Occ
}

// Stats are controller counters exposed for tests and tools.
type Stats struct {
	AdminCmds   uint64
	ReadCmds    uint64
	WriteCmds   uint64
	FlushCmds   uint64
	ErrorCmds   uint64
	MediaErrs   uint64
	Fetches     uint64
	Completions uint64
	Interrupts  uint64
	// SQDoorbellWrites and CQDoorbellWrites count doorbell register writes
	// arriving at the controller (the device-side view of ring traffic;
	// compare QueueView.SQDoorbells for the driver-side view).
	SQDoorbellWrites uint64
	CQDoorbellWrites uint64
	// CQEsDropped counts completions discarded by fault injection
	// (InjectDropCQEs): the command executed but its CQE never reached
	// the host, which must recover by timeout + retry.
	CQEsDropped uint64
	// LinkRetries counts fetch/CQE DMAs re-issued after a fabric link
	// outage (see Params.LinkRetryNs).
	LinkRetries uint64
	// Reservation counters: successful Register/Acquire/Release commands,
	// preemptions, and commands completed with Reservation Conflict (each
	// of those was fenced before touching the medium).
	ResvRegisters uint64
	ResvAcquires  uint64
	ResvReleases  uint64
	ResvPreempts  uint64
	ResvConflicts uint64
	// ArbFetched counts I/O commands claimed by the arbitration loop,
	// split by the submission queue's declared priority class (indexed
	// by QPrio*). Queues carry their class under round-robin arbitration
	// too, so the split attributes fetches in either mode.
	ArbFetched [4]uint64
	// ArbRounds counts weighted-round-robin credit refill rounds; stays
	// zero under round-robin arbitration.
	ArbRounds uint64
}

// Controller is a simulated single-function NVMe controller. Create it
// with New, attach its BAR to a fabric domain, then drive it exactly as a
// driver drives hardware: write registers, ring doorbells, poll CQs.
type Controller struct {
	name   string
	kernel *sim.Kernel
	dom    *pcie.Domain
	node   pcie.NodeID
	bar    pcie.Range
	med    Medium
	params Params

	cc   uint32
	csts uint32
	aqa  uint32
	asq  uint64
	acq  uint64

	sqs []*subQueue
	cqs []*compQueue

	doorbell  *sim.Signal
	cqSpace   *sim.Signal
	enableSig *sim.Signal
	inflight  *sim.Semaphore

	msi []MSIEntry

	// cmb backs the Controller Memory Buffer (nil when disabled).
	cmb []byte
	// vwc is the volatile-write-cache feature state (always reported; the
	// Optane-class medium itself is cacheless, so it is a no-op switch).
	vwc bool

	ident IdentifyController

	// Stats is exported state for observability; not part of the device
	// model.
	Stats Stats
	// BusyOcc accounts commands in flight inside the controller (fetch
	// through CQE post): its busy time is the controller's non-idle
	// time, its mean level the effective command concurrency.
	BusyOcc attr.Occ
	// AdminOcc accounts admin commands specifically — the contended
	// bring-up resource when many hosts share one controller.
	AdminOcc attr.Occ
	// qstats attributes work to individual queues, indexed by SQ ID.
	qstats []QueueStats

	// dropCQE counts, per SQ ID, completions to silently discard (fault
	// injection, see InjectDropCQEs).
	dropCQE []int

	// resv is the namespace's persistent-reservation state (one namespace).
	resv *resvState

	// arbCDW11 is the Arbitration feature (FID 0x01) value; wrr is the
	// scheduler state derived from it, consulted only when CC.AMS selects
	// WRR with urgent.
	arbCDW11 uint32
	wrr      wrrSched

	// tracer records device-side hops (fetch, decode, medium, transfer,
	// completion post) on the span keyed by (SQ ID, CID). Nil when
	// tracing is off.
	tracer *trace.Tracer
}

// New creates a controller attached at node in dom, claiming bar for its
// register file, executing against med.
func New(name string, dom *pcie.Domain, node pcie.NodeID, bar pcie.Range, med Medium, params Params) (*Controller, error) {
	p := params.withDefaults()
	c := &Controller{
		name:    name,
		kernel:  dom.Kernel(),
		dom:     dom,
		node:    node,
		bar:     bar,
		med:     med,
		params:  p,
		sqs:     make([]*subQueue, p.MaxQueuePairs),
		cqs:     make([]*compQueue, p.MaxQueuePairs),
		msi:     make([]MSIEntry, p.MaxQueuePairs),
		qstats:  make([]QueueStats, p.MaxQueuePairs),
		dropCQE: make([]int, p.MaxQueuePairs),
		resv:    newResvState(),
		ident: IdentifyController{
			VID:      0x8086,
			SSVID:    0x8086,
			Serial:   "SIMP4800X0001",
			Model:    "Simulated Optane P4800X",
			Firmware: "E2010600",
			OACS:     OACSGetLogPage,
			ONCS:     ONCSCompare | ONCSWriteZeroes | ONCSDSM | ONCSReservations,
			NN:       1,
		},
	}
	c.doorbell = sim.NewSignal(c.kernel)
	c.cqSpace = sim.NewSignal(c.kernel)
	c.enableSig = sim.NewSignal(c.kernel)
	c.inflight = sim.NewSemaphore(c.kernel, p.MaxInflight)
	c.arbCDW11 = defaultArbCDW11
	c.applyArb()
	if p.CMBBytes > 0 {
		if CMBBase+p.CMBBytes > bar.Size {
			return nil, fmt.Errorf("nvme: CMB of %d bytes does not fit BAR of %#x", p.CMBBytes, bar.Size)
		}
		c.cmb = make([]byte, p.CMBBytes)
	}
	if err := dom.Claim(bar, node, c); err != nil {
		return nil, err
	}
	c.kernel.Spawn(name+"/ctrl", c.run)
	return c, nil
}

// BAR returns the controller's register range.
func (c *Controller) BAR() pcie.Range { return c.bar }

// Node returns the controller's fabric node.
func (c *Controller) Node() pcie.NodeID { return c.node }

// Domain returns the domain the controller lives in.
func (c *Controller) Domain() *pcie.Domain { return c.dom }

// Params returns the controller configuration.
func (c *Controller) Params() Params { return c.params }

// Medium returns the backing medium.
func (c *Controller) Medium() Medium { return c.med }

// SetTracer attaches (or detaches, with nil) a tracer recording
// device-side hops per command. Call before driving I/O.
func (c *Controller) SetTracer(t *trace.Tracer) { c.tracer = t }

// SetMSIVector programs MSI-X vector iv to post data to addr. It is a
// convenience equivalent to writing the vector's MSI-X table entry
// through the BAR.
func (c *Controller) SetMSIVector(iv uint16, addr pcie.Addr, data uint32) error {
	if int(iv) >= len(c.msi) {
		return fmt.Errorf("nvme: MSI vector %d out of range", iv)
	}
	c.msi[iv] = MSIEntry{Addr: addr, Data: data, Enabled: true}
	return nil
}

// msixWrite handles a write into the MSI-X vector table. Partial-entry
// writes are applied field-wise, as hardware does.
func (c *Controller) msixWrite(off uint64, data []byte) {
	iv := int(off / MSIXEntrySize)
	if iv >= len(c.msi) {
		return
	}
	field := off % MSIXEntrySize
	e := &c.msi[iv]
	for i, b := range data {
		pos := field + uint64(i)
		switch {
		case pos < 8:
			shift := 8 * pos
			e.Addr = e.Addr&^(0xFF<<shift) | pcie.Addr(b)<<shift
		case pos < 12:
			shift := 8 * (pos - 8)
			e.Data = e.Data&^(0xFF<<shift) | uint32(b)<<shift
		case pos == 12:
			// Control: bit 0 masks the vector.
			e.Enabled = b&1 == 0 && e.Addr != 0
		}
	}
	if field < 12 && e.Addr != 0 {
		e.Enabled = true
	}
}

// Ready reports CSTS.RDY.
func (c *Controller) Ready() bool { return c.csts&CSTSReady != 0 }

// Fatal reports CSTS.CFS.
func (c *Controller) Fatal() bool { return c.csts&CSTSCFS != 0 }

// cap builds the CAP register value.
func (c *Controller) capReg() uint64 {
	v := uint64(c.params.MQES)        // MQES
	v |= CAPAMSWRRU                   // AMS: WRR with urgent supported
	v |= uint64(20) << 24             // TO: 10 s in 500 ms units
	v |= uint64(c.params.DSTRD) << 32 // DSTRD
	v |= uint64(1) << 37              // CSS: NVM command set
	return v
}

// TargetRead implements pcie.Target: register reads.
func (c *Controller) TargetRead(addr pcie.Addr, buf []byte) {
	off := addr - c.bar.Base
	if off >= CMBBase {
		if c.cmb != nil && off-CMBBase+uint64(len(buf)) <= uint64(len(c.cmb)) {
			copy(buf, c.cmb[off-CMBBase:])
		} else {
			for i := range buf {
				buf[i] = 0
			}
		}
		return
	}
	var v uint64
	switch {
	case off >= RegCAP && off < RegCAP+8:
		v = c.capReg() >> (8 * (off - RegCAP))
	case off >= RegVS && off < RegVS+4:
		v = uint64(Version) >> (8 * (off - RegVS))
	case off >= RegCC && off < RegCC+4:
		v = uint64(c.cc) >> (8 * (off - RegCC))
	case off >= RegCSTS && off < RegCSTS+4:
		v = uint64(c.csts) >> (8 * (off - RegCSTS))
	case off >= RegAQA && off < RegAQA+4:
		v = uint64(c.aqa) >> (8 * (off - RegAQA))
	case off >= RegASQ && off < RegASQ+8:
		v = c.asq >> (8 * (off - RegASQ))
	case off >= RegACQ && off < RegACQ+8:
		v = c.acq >> (8 * (off - RegACQ))
	case off >= RegCMBLOC && off < RegCMBLOC+4:
		if c.cmb != nil {
			v = uint64(CMBBase) >> (8 * (off - RegCMBLOC))
		}
	case off >= RegCMBSZ && off < RegCMBSZ+4:
		v = uint64(len(c.cmb)) >> (8 * (off - RegCMBSZ))
	default:
		v = 0 // doorbells and reserved read as zero
	}
	for i := range buf {
		buf[i] = byte(v >> (8 * i))
	}
}

// TargetWrite implements pcie.Target: register, doorbell and MSI-X table
// writes. It runs inline in the event kernel at delivery time and must
// not block.
func (c *Controller) TargetWrite(addr pcie.Addr, data []byte) {
	off := addr - c.bar.Base
	if off >= CMBBase {
		if c.cmb != nil && off-CMBBase+uint64(len(data)) <= uint64(len(c.cmb)) {
			copy(c.cmb[off-CMBBase:], data)
		}
		return
	}
	if off >= MSIXTableBase {
		c.msixWrite(off-MSIXTableBase, data)
		return
	}
	if off >= DoorbellBase {
		c.doorbellWrite(off, data)
		return
	}
	var v uint64
	for i := 0; i < len(data) && i < 8; i++ {
		v |= uint64(data[i]) << (8 * i)
	}
	switch off {
	case RegCC:
		c.writeCC(uint32(v))
	case RegAQA:
		c.aqa = uint32(v)
	case RegASQ:
		c.asq = v
	case RegACQ:
		c.acq = v
	case RegINTMS, RegINTMC:
		// Interrupt masking not modeled; MSI vectors are per-CQ.
	default:
		// Writes to RO/reserved registers are ignored, as hardware does.
	}
}

func (c *Controller) writeCC(v uint32) {
	was := c.cc&CCEnable != 0
	c.cc = v
	now := v&CCEnable != 0
	switch {
	case now && !was:
		c.kernel.After(c.params.EnableDelayNs, c.enable)
	case !now && was:
		c.reset()
	}
}

// enable brings the controller ready: admin queues are created from
// AQA/ASQ/ACQ and CSTS.RDY is set.
func (c *Controller) enable() {
	asqs := int(c.aqa&0xFFF) + 1
	acqs := int(c.aqa>>16&0xFFF) + 1
	c.sqs[0] = &subQueue{id: 0, base: c.asq, size: asqs, cqid: 0, created: true}
	c.cqs[0] = &compQueue{id: 0, base: c.acq, size: acqs, phase: true, ien: true, iv: 0, created: true, sqCount: 1}
	c.csts |= CSTSReady
	c.enableSig.Set()
}

// reset clears controller state (CC.EN falling edge). Reservations do not
// persist through a controller reset (no Persist Through Power Loss
// support is advertised).
func (c *Controller) reset() {
	c.csts &^= CSTSReady | CSTSCFS
	for i := range c.sqs {
		c.sqs[i] = nil
		c.cqs[i] = nil
	}
	c.resv = newResvState()
	// Feature values do not persist through a reset.
	c.arbCDW11 = defaultArbCDW11
	c.applyArb()
}

func (c *Controller) doorbellWrite(off uint64, data []byte) {
	if len(data) < 4 {
		return
	}
	stride := uint64(4) << c.params.DSTRD
	idx := (off - DoorbellBase) / stride
	if (off-DoorbellBase)%stride != 0 {
		return
	}
	qid := int(idx / 2)
	val := int(binary.LittleEndian.Uint32(data))
	if qid >= c.params.MaxQueuePairs {
		return
	}
	if idx%2 == 0 {
		sq := c.sqs[qid]
		if sq == nil || !sq.created || val < 0 || val >= sq.size {
			c.csts |= CSTSCFS
			return
		}
		c.Stats.SQDoorbellWrites++
		c.qstats[qid].SQDoorbells++
		if n := (val - sq.tail + sq.size) % sq.size; n > 0 {
			c.qstats[qid].SQOcc.EnterN(c.kernel.Now(), int64(n))
		}
		sq.tail = val
		c.doorbell.Set()
	} else {
		cq := c.cqs[qid]
		if cq == nil || !cq.created || val < 0 || val >= cq.size {
			c.csts |= CSTSCFS
			return
		}
		c.Stats.CQDoorbellWrites++
		if n := (val - cq.head + cq.size) % cq.size; n > 0 {
			c.qstats[qid].CQOcc.ExitN(c.kernel.Now(), int64(n))
		}
		cq.head = val
		c.cqSpace.Set()
	}
}

// run is the controller's main arbitration loop. The arbitration
// mechanism is selected by CC.AMS: plain round-robin across submission
// queues (the default), or weighted round robin with urgent priority
// class when the host selected AMSWRRUrgent at enable time.
func (c *Controller) run(p *sim.Proc) {
	rr := 0
	for {
		if c.csts&CSTSReady == 0 {
			p.WaitSignal(c.enableSig)
			continue
		}
		var progressed bool
		if c.cc>>CCAMSShift&CCAMSMask == AMSWRRUrgent {
			progressed = c.wrrPass(p)
		} else {
			progressed = c.rrPass(p, &rr)
		}
		if !progressed {
			// No yields happen between the (empty) scan and this wait,
			// so a doorbell cannot slip by unseen.
			p.WaitSignal(c.doorbell)
		}
	}
}

// rrPass is one round-robin arbitration pass: every queue with pending
// entries gets one command dispatched, starting after the queue served
// first on the previous pass.
func (c *Controller) rrPass(p *sim.Proc, rr *int) bool {
	progressed := false
	n := len(c.sqs)
	for i := 0; i < n; i++ {
		sq := c.sqs[(*rr+i)%n]
		if sq == nil || !sq.created || sq.head == sq.tail {
			continue
		}
		c.dispatch(p, sq)
		progressed = true
	}
	*rr = (*rr + 1) % n
	return progressed
}

// dispatch claims the next slot of sq and spawns a worker to execute
// it. Claiming up front lets the arbitration loop move on; the worker
// fetches the entry itself (fetch latency depends on where the SQ
// memory lives — the Fig. 8 effect).
func (c *Controller) dispatch(p *sim.Proc, sq *subQueue) {
	slot := sq.head
	sq.head = (sq.head + 1) % sq.size
	c.qstats[sq.id].SQOcc.Exit(p.Now())
	if sq.id != 0 {
		c.Stats.ArbFetched[sq.prio&3]++
	}
	p.Acquire(c.inflight)
	q := sq
	c.kernel.Spawn(fmt.Sprintf("%s/cmd-q%d-s%d", c.name, q.id, slot), func(wp *sim.Proc) {
		defer c.inflight.Release()
		c.execute(wp, q, slot)
	})
}

// QueueStats returns the per-queue counters for SQ qid (zero value for
// out-of-range or never-created queues).
func (c *Controller) QueueStats(qid uint16) QueueStats {
	if int(qid) >= len(c.qstats) {
		return QueueStats{}
	}
	return c.qstats[qid]
}

// ActiveIOQueues lists the created I/O submission queue IDs in ascending
// order (the admin queue, qid 0, is excluded). Telemetry uses this to
// wire per-queue labeled gauges after bring-up.
func (c *Controller) ActiveIOQueues() []uint16 {
	var out []uint16
	for i := 1; i < len(c.sqs); i++ {
		if sq := c.sqs[i]; sq != nil && sq.created {
			out = append(out, uint16(i))
		}
	}
	return out
}

// cmbAt returns the CMB backing slice for a device-domain address range,
// or nil when the range is outside the CMB (or it is disabled).
func (c *Controller) cmbAt(addr pcie.Addr, n int) []byte {
	if c.cmb == nil {
		return nil
	}
	base := c.bar.Base + CMBBase
	if addr < base || addr+pcie.Addr(n) > base+pcie.Addr(len(c.cmb)) {
		return nil
	}
	off := addr - base
	return c.cmb[off : off+pcie.Addr(n)]
}

// dmaRead fetches n bytes for the controller: internal CMB access when the
// address falls inside the buffer, a fabric DMA read otherwise.
func (c *Controller) dmaRead(p *sim.Proc, addr pcie.Addr, buf []byte) error {
	if s := c.cmbAt(addr, len(buf)); s != nil {
		p.Sleep(c.params.CMBAccessNs)
		copy(buf, s)
		return nil
	}
	return c.dom.MemRead(p, c.node, addr, buf)
}

// dmaWrite stores data for the controller: internal CMB access or a
// posted fabric write.
func (c *Controller) dmaWrite(p *sim.Proc, addr pcie.Addr, data []byte) error {
	if s := c.cmbAt(addr, len(data)); s != nil {
		p.Sleep(c.params.CMBAccessNs)
		copy(s, data)
		return nil
	}
	return c.dom.MemWrite(p, c.node, addr, data)
}

// dmaRetry runs op, riding out fabric link outages with bounded
// exponential backoff (Params.LinkRetryNs): a transient NTB flap must
// not brick the controller for every attached host. Any other error, or
// an outage outlasting the window, is returned for the caller to treat
// as fatal.
func (c *Controller) dmaRetry(p *sim.Proc, op func() error) error {
	err := op()
	if err == nil || !errors.Is(err, ntb.ErrLinkDown) {
		return err
	}
	deadline := p.Now() + sim.Time(c.params.LinkRetryNs)
	backoff := int64(sim.Microsecond)
	for {
		c.Stats.LinkRetries++
		p.Sleep(backoff)
		if backoff < 16*sim.Microsecond {
			backoff *= 2
		}
		err = op()
		if err == nil || !errors.Is(err, ntb.ErrLinkDown) || p.Now() >= deadline {
			return err
		}
	}
}

// execute fetches and runs the command in SQ slot, then posts a completion.
func (c *Controller) execute(p *sim.Proc, sq *subQueue, slot int) {
	c.BusyOcc.Enter(p.Now())
	defer func() { c.BusyOcc.Exit(p.Now()) }()
	if sq.id == 0 {
		c.AdminOcc.Enter(p.Now())
		defer func() { c.AdminOcc.Exit(p.Now()) }()
	}
	tr := c.tracer
	t0 := p.Now()
	buf := make([]byte, SQESize)
	if err := c.dmaRetry(p, func() error {
		return c.dmaRead(p, sq.base+pcie.Addr(slot*SQESize), buf)
	}); err != nil {
		c.csts |= CSTSCFS
		return
	}
	c.Stats.Fetches++
	c.qstats[sq.id].Fetched++
	cmd := UnmarshalSQE(buf)
	if tr != nil {
		var cross uint64
		if res, err := c.dom.Resolve(c.node, sq.base, 1); err == nil {
			cross = uint64(res.Crossings)
		}
		tr.HopNote(sq.id, cmd.CID, trace.StageCtrlFetch, t0, p.Now(), cross)
		t0 = p.Now()
	}
	decodeNs := c.params.CmdOverheadNs
	if sq.id == 0 && c.params.AdminOverheadNs > 0 {
		decodeNs = c.params.AdminOverheadNs
	}
	p.Sleep(decodeNs)
	tr.Hop(sq.id, cmd.CID, trace.StageCtrlDecode, t0, p.Now())

	var status uint16
	var dw0 uint32
	if sq.id == 0 {
		status, dw0 = c.execAdmin(p, &cmd)
		c.Stats.AdminCmds++
	} else {
		status = c.execIO(p, sq.id, &cmd)
	}
	if status != StatusOK {
		c.Stats.ErrorCmds++
	}
	c.complete(p, sq, cmd.CID, dw0, status)
}

// complete posts a CQE to the SQ's paired CQ, waiting for space if the
// host has not consumed earlier entries.
func (c *Controller) complete(p *sim.Proc, sq *subQueue, cid uint16, dw0 uint32, status uint16) {
	t0 := p.Now()
	cq := c.cqs[sq.cqid]
	if cq == nil || !cq.created {
		c.csts |= CSTSCFS
		return
	}
	if c.dropCQE[sq.id] > 0 {
		// Injected fault: the command executed but its completion is lost
		// before reaching the CQ. Exactly this CID disappears; later
		// completions for the queue are unaffected.
		c.dropCQE[sq.id]--
		c.Stats.CQEsDropped++
		c.qstats[sq.id].CQEsDropped++
		return
	}
	for (cq.tail+1)%cq.size == cq.head {
		p.WaitSignal(c.cqSpace)
	}
	idx := cq.tail
	ph := cq.phase
	cq.tail++
	if cq.tail == cq.size {
		cq.tail = 0
		cq.phase = !cq.phase
	}
	cqe := CQE{DW0: dw0, SQHead: uint16(sq.head), SQID: sq.id, CID: cid}
	cqe.StatusPhase = status << 1
	if ph {
		cqe.StatusPhase |= 1
	}
	p.Sleep(c.params.CplOverheadNs)
	if err := c.dmaRetry(p, func() error {
		return c.dmaWrite(p, cq.base+pcie.Addr(idx*CQESize), cqe.Marshal())
	}); err != nil {
		c.csts |= CSTSCFS
		return
	}
	c.tracer.Hop(sq.id, cid, trace.StageCQPost, t0, p.Now())
	c.Stats.Completions++
	c.qstats[sq.id].Completions++
	c.qstats[sq.cqid].CQOcc.Enter(p.Now())
	if cq.ien {
		c.interrupt(p, cq.iv)
	}
}

// InjectDropCQEs arms the controller to discard the next n completions
// destined for SQ qid (fault injection). Out-of-range qids are ignored.
func (c *Controller) InjectDropCQEs(qid uint16, n int) {
	if int(qid) < len(c.dropCQE) {
		c.dropCQE[qid] += n
	}
}

// interrupt delivers MSI vector iv as a posted write.
func (c *Controller) interrupt(p *sim.Proc, iv uint16) {
	if int(iv) >= len(c.msi) || !c.msi[iv].Enabled {
		return
	}
	e := c.msi[iv]
	var data [4]byte
	binary.LittleEndian.PutUint32(data[:], e.Data)
	if err := c.dom.MemWrite(p, c.node, e.Addr, data[:]); err == nil {
		c.Stats.Interrupts++
	}
}
