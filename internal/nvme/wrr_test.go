package nvme

import (
	"testing"

	"repro/internal/memory"
	"repro/internal/pcie"
	"repro/internal/sim"
)

// TestWRRSchedCreditMath drives the scheduler core through fixed pick
// sequences: class strictness, credit refill rounds, the burst cap on a
// turn's allowance, and round robin among same-class queues. Each pick
// consumes its full allowance, as the controller does when the queue is
// backlogged.
func TestWRRSchedCreditMath(t *testing.T) {
	type pick struct {
		class int
		qid   uint16
		max   int
	}
	cases := []struct {
		name    string
		weights [3]int
		burst   int
		pending map[int][]uint16
		picks   []pick
		rounds  uint64
	}{
		{
			name:    "strict class order and refill",
			weights: [3]int{2, 1, 1},
			pending: map[int][]uint16{0: {1}, 1: {2}, 2: {3}},
			picks: []pick{
				{0, 1, 2}, {1, 2, 1}, {2, 3, 1}, // round 1
				{0, 1, 2}, // refill, round 2
			},
			rounds: 2,
		},
		{
			name:    "burst caps the turn allowance",
			weights: [3]int{8, 2, 1},
			burst:   2,
			pending: map[int][]uint16{0: {1}, 1: {2}, 2: {3}},
			picks: []pick{
				{0, 1, 2}, {0, 1, 2}, {0, 1, 2}, {0, 1, 2}, // 8 high credits, 2 at a time
				{1, 2, 2}, {2, 3, 1},
			},
			rounds: 1,
		},
		{
			name:    "round robin within a class",
			weights: [3]int{4, 1, 1},
			burst:   1,
			pending: map[int][]uint16{0: {1, 3, 5}},
			picks: []pick{
				{0, 1, 1}, {0, 3, 1}, {0, 5, 1}, {0, 1, 1}, // round 1 (4 credits)
				{0, 3, 1}, // refill, cursor keeps rotating
			},
			rounds: 2,
		},
		{
			name:    "lower class alone still rounds",
			weights: [3]int{3, 2, 1},
			pending: map[int][]uint16{2: {7}},
			picks:   []pick{{2, 7, 1}, {2, 7, 1}},
			rounds:  2,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := wrrSched{Weights: tc.weights, Burst: tc.burst}
			pending := func(class int) []uint16 { return tc.pending[class] }
			for i, want := range tc.picks {
				cl, qid, max, ok := s.next(pending)
				if !ok {
					t.Fatalf("pick %d: no pick, want %+v", i, want)
				}
				if cl != want.class || qid != want.qid || max != want.max {
					t.Fatalf("pick %d = (class %d, qid %d, max %d), want %+v", i, cl, qid, max, want)
				}
				s.consume(cl, max)
			}
			if s.Rounds != tc.rounds {
				t.Errorf("rounds = %d, want %d", s.Rounds, tc.rounds)
			}
		})
	}
	var s wrrSched
	if _, _, _, ok := s.next(func(int) []uint16 { return nil }); ok {
		t.Error("pick succeeded with no pending work")
	}
}

// newSerialRig builds the local-NVMe rig with MaxInflight 1, so command
// execution is serialized and completion order equals fetch order — the
// observable the arbitration conformance tests assert on.
func newSerialRig(t *testing.T) *rig {
	t.Helper()
	k := sim.NewKernel()
	dom := pcie.NewDomain("host0", k, pcie.LinkParams{})
	rc := dom.AddNode(pcie.RootComplex, "rc")
	ep := dom.AddNode(pcie.Endpoint, "nvme")
	if err := dom.Connect(rc, ep); err != nil {
		t.Fatal(err)
	}
	mem := memory.New(0x100000, 8<<20)
	host, err := pcie.NewHostPort(dom, rc, mem, pcie.CPUParams{})
	if err != nil {
		t.Fatal(err)
	}
	med := NewFlashMedium(k, 512, 1<<20, FlashParams{}, 42)
	ctrl, err := New("nvme0", dom, ep, pcie.Range{Base: rigBARBase, Size: rigBARSize}, med,
		Params{MaxInflight: 1})
	if err != nil {
		t.Fatal(err)
	}
	return &rig{k: k, dom: dom, host: host, ctrl: ctrl, med: med}
}

// wrrQueue creates I/O queue pair qid with the given priority class and
// preloads n read commands into SQ memory without ringing the doorbell.
func wrrQueue(t *testing.T, p *sim.Proc, r *rig, a *AdminClient, qid uint16, prio uint8, n int) *QueueView {
	t.Helper()
	depth := 64
	sq, _ := r.host.Alloc(uint64(depth*SQESize), PageSize)
	cq, _ := r.host.Alloc(uint64(depth*CQESize), PageSize)
	if err := a.CreateQueuePairPrio(p, qid, depth, sq, cq, false, 0, prio); err != nil {
		t.Fatalf("create qp %d: %v", qid, err)
	}
	buf, _ := r.host.Alloc(PageSize, PageSize)
	for i := 0; i < n; i++ {
		cmd := SQE{Opcode: IORead, NSID: 1, CID: uint16(i), PRP1: buf,
			CDW10: uint32(i) * 8, CDW12: 7}
		if err := r.host.Write(p, sq+pcie.Addr(i*SQESize), cmd.Marshal()); err != nil {
			t.Fatal(err)
		}
	}
	return NewQueueView(qid, depth, sq, cq,
		rigBARBase+SQTailDoorbell(qid, a.DSTRD), rigBARBase+CQHeadDoorbell(qid, a.DSTRD))
}

// ringTail publishes n preloaded entries by writing the SQ tail doorbell.
func ringTail(t *testing.T, p *sim.Proc, r *rig, a *AdminClient, qid uint16, n int) {
	t.Helper()
	var b [4]byte
	b[0] = byte(n)
	b[1] = byte(n >> 8)
	if err := r.host.Write(p, rigBARBase+SQTailDoorbell(qid, a.DSTRD), b[:]); err != nil {
		t.Fatal(err)
	}
}

// collectOrder polls the queues and records the SQID sequence of the
// next total completions.
func collectOrder(t *testing.T, p *sim.Proc, r *rig, qs []*QueueView, total int) []uint16 {
	t.Helper()
	var order []uint16
	deadline := p.Now() + 500*sim.Millisecond
	for len(order) < total {
		for _, q := range qs {
			cqe, ok, err := q.Poll(p, r.host)
			if err != nil {
				t.Fatal(err)
			}
			if ok {
				order = append(order, cqe.SQID)
			}
		}
		if p.Now() > deadline {
			t.Fatalf("timeout with %d/%d completions: %v", len(order), total, order)
		}
		p.Sleep(200)
	}
	return order
}

// TestWRRWeightedServiceRatio floods one high, one medium and one low
// queue under WRR with weights 4:2:1 and burst 1. With execution
// serialized, the steady-state fetch schedule is the periodic sequence
// H H H H M M L, so every window of 7 completions past the start-up
// transient holds exactly 4 high, 2 medium and 1 low.
func TestWRRWeightedServiceRatio(t *testing.T) {
	r := newSerialRig(t)
	const per = 28
	r.run(t, func(p *sim.Proc) {
		a := NewAdminClient(r.host, rigBARBase)
		a.AMS = AMSWRRUrgent
		if err := a.Enable(p, 32); err != nil {
			t.Fatal(err)
		}
		got, err := a.SetArbitration(p, 0, 3, 1, 0) // burst 1, weights 4/2/1
		if err != nil {
			t.Fatal(err)
		}
		if want := ArbitrationCDW11(0, 3, 1, 0); got != want {
			t.Fatalf("arbitration feature reads back %#x, want %#x", got, want)
		}
		qh := wrrQueue(t, p, r, a, 1, QPrioHigh, per)
		qm := wrrQueue(t, p, r, a, 2, QPrioMedium, per)
		ql := wrrQueue(t, p, r, a, 3, QPrioLow, per)
		for qid := uint16(1); qid <= 3; qid++ {
			ringTail(t, p, r, a, qid, per)
		}
		order := collectOrder(t, p, r, []*QueueView{qh, qm, ql}, 3*per)
		// Skip two periods of transient, keep windows that end while every
		// queue is still backlogged (high drains first at 4 per period).
		counts := func(w []uint16) (h, m, l int) {
			for _, id := range w {
				switch id {
				case 1:
					h++
				case 2:
					m++
				case 3:
					l++
				}
			}
			return
		}
		for i := 14; i+7 <= 42; i++ {
			h, m, l := counts(order[i : i+7])
			if h != 4 || m != 2 || l != 1 {
				t.Fatalf("window %d = %d/%d/%d high/medium/low, want 4/2/1\norder: %v",
					i, h, m, l, order)
			}
		}
	})
	st := r.ctrl.Stats
	if st.ArbFetched[QPrioHigh] != per || st.ArbFetched[QPrioMedium] != per || st.ArbFetched[QPrioLow] != per {
		t.Errorf("per-class fetched = %v, want %d each for high/medium/low", st.ArbFetched, per)
	}
	if st.ArbRounds == 0 {
		t.Error("no WRR rounds counted")
	}
}

// TestWRRUrgentStarvesLow: the urgent class is served strictly ahead of
// the weighted classes, so once urgent work is visible at most one
// already-dispatched low command may complete before the urgent backlog
// drains.
func TestWRRUrgentStarvesLow(t *testing.T) {
	r := newSerialRig(t)
	const per = 16
	r.run(t, func(p *sim.Proc) {
		a := NewAdminClient(r.host, rigBARBase)
		a.AMS = AMSWRRUrgent
		if err := a.Enable(p, 32); err != nil {
			t.Fatal(err)
		}
		qu := wrrQueue(t, p, r, a, 1, QPrioUrgent, per)
		ql := wrrQueue(t, p, r, a, 2, QPrioLow, per)
		// Low rings first; urgent arrives while low is backlogged.
		ringTail(t, p, r, a, 2, per)
		ringTail(t, p, r, a, 1, per)
		order := collectOrder(t, p, r, []*QueueView{qu, ql}, 2*per)
		first, last := -1, -1
		for i, id := range order {
			if id == 1 {
				if first < 0 {
					first = i
				}
				last = i
			}
		}
		if first < 0 {
			t.Fatal("no urgent completions")
		}
		lowBetween := 0
		for _, id := range order[first : last+1] {
			if id == 2 {
				lowBetween++
			}
		}
		if lowBetween > 1 {
			t.Errorf("%d low completions interleaved with the urgent drain: %v", lowBetween, order)
		}
	})
	if got := r.ctrl.Stats.ArbFetched[QPrioUrgent]; got != per {
		t.Errorf("urgent fetched = %d, want %d", got, per)
	}
}

// TestRRFallbackIgnoresPriority: with CC.AMS left at round robin,
// declared queue priorities change nothing — a high and a low queue
// interleave exactly as the stock fairness test expects.
func TestRRFallbackIgnoresPriority(t *testing.T) {
	r := newSerialRig(t)
	const per = 12
	r.run(t, func(p *sim.Proc) {
		a := r.enable(t, p) // default AMS: round robin
		qh := wrrQueue(t, p, r, a, 1, QPrioHigh, per)
		ql := wrrQueue(t, p, r, a, 2, QPrioLow, per)
		ringTail(t, p, r, a, 1, per)
		ringTail(t, p, r, a, 2, per)
		order := collectOrder(t, p, r, []*QueueView{qh, ql}, 2*per)
		for i := 2; i+4 <= len(order); i++ {
			seen := map[uint16]bool{}
			for _, id := range order[i : i+4] {
				seen[id] = true
			}
			if len(seen) < 2 {
				t.Fatalf("window %d starved a queue under RR: %v", i, order)
			}
		}
	})
	if r.ctrl.Stats.ArbRounds != 0 {
		t.Errorf("WRR rounds = %d under round-robin arbitration, want 0", r.ctrl.Stats.ArbRounds)
	}
}

// TestEnableRejectsUnsupportedAMS: requesting an arbitration mechanism
// CAP.AMS does not advertise fails enable.
func TestEnableRejectsUnsupportedAMS(t *testing.T) {
	r := newRig(t)
	r.run(t, func(p *sim.Proc) {
		a := NewAdminClient(r.host, rigBARBase)
		a.AMS = 7 // vendor-specific, not advertised
		if err := a.Enable(p, 32); err == nil {
			t.Fatal("enable accepted an unadvertised arbitration mechanism")
		}
	})
}
