package nvme

import (
	"encoding/binary"

	"repro/internal/pcie"
	"repro/internal/sim"
	"repro/internal/trace"
)

// execAdmin executes an admin command and returns (status, CQE.DW0).
func (c *Controller) execAdmin(p *sim.Proc, cmd *SQE) (uint16, uint32) {
	switch cmd.Opcode {
	case AdminIdentify:
		return c.adminIdentify(p, cmd), 0
	case AdminCreateIOCQ:
		return c.adminCreateCQ(cmd), 0
	case AdminCreateIOSQ:
		return c.adminCreateSQ(cmd), 0
	case AdminDeleteIOCQ:
		return c.adminDeleteCQ(cmd), 0
	case AdminDeleteIOSQ:
		return c.adminDeleteSQ(cmd), 0
	case AdminSetFeatures, AdminGetFeatures:
		return c.adminFeatures(cmd)
	case AdminAbort:
		// Commands execute to completion in this model; report
		// "not aborted" per spec DW0 bit 0.
		return StatusOK, 1
	case AdminGetLogPage:
		return c.adminGetLogPage(p, cmd), 0
	default:
		return Status(SCTGeneric, SCInvalidOpcode), 0
	}
}

func (c *Controller) adminIdentify(p *sim.Proc, cmd *SQE) uint16 {
	cns := uint8(cmd.CDW10)
	var page []byte
	switch cns {
	case CNSController:
		id := c.ident
		id.MaxQueueEntries = int(c.params.MQES) + 1
		page = MarshalIdentifyController(id)
	case CNSNamespace:
		if cmd.NSID != 1 {
			return Status(SCTGeneric, SCInvalidNS)
		}
		page = MarshalIdentifyNamespace(IdentifyNamespace{
			NSZE:  c.med.Blocks(),
			NCAP:  c.med.Blocks(),
			NUSE:  c.med.Blocks(),
			LBADS: log2(c.med.BlockSize()),
		})
	default:
		return Status(SCTGeneric, SCInvalidField)
	}
	if err := c.writePRP(p, cmd.PRP1, cmd.PRP2, page); err != StatusOK {
		return err
	}
	return StatusOK
}

func (c *Controller) adminCreateCQ(cmd *SQE) uint16 {
	qid := uint16(cmd.CDW10)
	size := int(cmd.CDW10>>16) + 1
	if qid == 0 || int(qid) >= c.params.MaxQueuePairs {
		return Status(SCTCmdSpecific, SCInvalidQID)
	}
	if c.cqs[qid] != nil {
		return Status(SCTCmdSpecific, SCInvalidQID)
	}
	if size < 2 || size > int(c.params.MQES)+1 {
		return Status(SCTCmdSpecific, SCInvalidQSize)
	}
	if cmd.CDW11&1 == 0 {
		// Only physically contiguous queues are supported (PC bit).
		return Status(SCTGeneric, SCInvalidField)
	}
	iv := uint16(cmd.CDW11 >> 16)
	if int(iv) >= len(c.msi) {
		return Status(SCTCmdSpecific, SCInvalidIntVector)
	}
	c.cqs[qid] = &compQueue{
		id: qid, base: cmd.PRP1, size: size, phase: true,
		ien: cmd.CDW11&2 != 0, iv: iv, created: true,
	}
	return StatusOK
}

func (c *Controller) adminCreateSQ(cmd *SQE) uint16 {
	qid := uint16(cmd.CDW10)
	size := int(cmd.CDW10>>16) + 1
	cqid := uint16(cmd.CDW11 >> 16)
	if qid == 0 || int(qid) >= c.params.MaxQueuePairs {
		return Status(SCTCmdSpecific, SCInvalidQID)
	}
	if c.sqs[qid] != nil {
		return Status(SCTCmdSpecific, SCInvalidQID)
	}
	if size < 2 || size > int(c.params.MQES)+1 {
		return Status(SCTCmdSpecific, SCInvalidQSize)
	}
	if cmd.CDW11&1 == 0 {
		return Status(SCTGeneric, SCInvalidField)
	}
	if int(cqid) >= c.params.MaxQueuePairs || c.cqs[cqid] == nil || !c.cqs[cqid].created {
		return Status(SCTCmdSpecific, SCInvalidCQ)
	}
	c.sqs[qid] = &subQueue{
		id: qid, base: cmd.PRP1, size: size, cqid: cqid, created: true,
		prio: uint8(cmd.CDW11 >> 1 & 3), // QPRIO, meaningful under WRR
	}
	c.cqs[cqid].sqCount++
	c.doorbell.Set() // the arbiter may be idle; re-scan queues
	return StatusOK
}

func (c *Controller) adminDeleteSQ(cmd *SQE) uint16 {
	qid := uint16(cmd.CDW10)
	if qid == 0 || int(qid) >= c.params.MaxQueuePairs || c.sqs[qid] == nil {
		return Status(SCTCmdSpecific, SCInvalidQID)
	}
	cqid := c.sqs[qid].cqid
	c.sqs[qid] = nil
	if c.cqs[cqid] != nil {
		c.cqs[cqid].sqCount--
	}
	// Registrant identity follows the queue pair, so a deleted queue's
	// registration dies with it — a later client granted the same qid must
	// not inherit its reservation rights.
	if _, ok := c.resv.regs[qid]; ok {
		c.resvDropRegistrant(qid)
		c.resv.gen++
	}
	return StatusOK
}

func (c *Controller) adminDeleteCQ(cmd *SQE) uint16 {
	qid := uint16(cmd.CDW10)
	if qid == 0 || int(qid) >= c.params.MaxQueuePairs || c.cqs[qid] == nil {
		return Status(SCTCmdSpecific, SCInvalidQID)
	}
	if c.cqs[qid].sqCount > 0 {
		// Deleting a CQ with mapped SQs is invalid (spec §5.5).
		return Status(SCTCmdSpecific, SCInvalidQID)
	}
	c.cqs[qid] = nil
	return StatusOK
}

func (c *Controller) adminFeatures(cmd *SQE) (uint16, uint32) {
	fid := uint8(cmd.CDW10)
	isSet := cmd.Opcode == AdminSetFeatures
	switch fid {
	case FeatArbitration:
		if isSet {
			c.arbCDW11 = cmd.CDW11
			c.applyArb()
			return StatusOK, 0
		}
		return StatusOK, c.arbCDW11
	case FeatNumQueues:
		// Grant up to MaxQueuePairs-1 I/O queues in each direction,
		// regardless of the request (0-based encoding).
		n := uint32(c.params.MaxQueuePairs - 2) // 0-based
		return StatusOK, n<<16 | n
	case FeatVolatileWriteCache:
		if isSet {
			c.vwc = cmd.CDW11&1 != 0
			return StatusOK, 0
		}
		if c.vwc {
			return StatusOK, 1
		}
		return StatusOK, 0
	default:
		return Status(SCTGeneric, SCInvalidField), 0
	}
}

func (c *Controller) adminGetLogPage(p *sim.Proc, cmd *SQE) uint16 {
	// NUMD (number of dwords, 0-based) spans CDW10 bits 27:16; the log
	// identifier rides in CDW10 bits 7:0.
	lid := uint8(cmd.CDW10)
	numd := int(cmd.CDW10>>16&0xFFF) + 1
	n := numd * 4
	if n > PageSize {
		n = PageSize
	}
	page := make([]byte, n)
	if lid == LogSMART {
		smart := MarshalSMARTLog(c.smartLog())
		copy(page, smart)
	}
	return c.writePRP(p, cmd.PRP1, cmd.PRP2, page)
}

// smartLog builds the health log from live counters.
func (c *Controller) smartLog() SMARTLog {
	s := SMARTLog{
		TemperatureK:  313, // a steady 40 C
		HostReadCmds:  c.Stats.ReadCmds,
		HostWriteCmds: c.Stats.WriteCmds,
		PowerCycles:   1,
		MediaErrors:   c.Stats.MediaErrs,
	}
	if f, ok := c.med.(*FlashMedium); ok {
		unit := uint64(f.BlockSize())
		// Spec units are 1000 x 512-byte units; keep raw 512-byte-unit
		// counts for small simulated volumes.
		s.UnitsRead = f.BlocksRead * unit / 512
		s.UnitsWritten = f.BlocksWritten * unit / 512
	}
	return s
}

// execIO executes an NVM command from SQ qid and returns the status.
// qid keys device-side trace hops to the right span.
func (c *Controller) execIO(p *sim.Proc, qid uint16, cmd *SQE) uint16 {
	if cmd.NSID != 1 {
		return Status(SCTGeneric, SCInvalidNS)
	}
	// The reservation fence runs before any medium or data-transfer work:
	// a fenced command completes with Reservation Conflict and never
	// reaches the medium.
	if st := c.resvCheck(qid, cmd.Opcode); st != StatusOK {
		return st
	}
	switch cmd.Opcode {
	case IORead:
		return c.ioRead(p, qid, cmd)
	case IOWrite:
		return c.ioWrite(p, qid, cmd)
	case IOFlush:
		if err := c.med.Flush(p); err != nil {
			return Status(SCTMediaError, SCDataTransfer)
		}
		c.Stats.FlushCmds++
		return StatusOK
	case IOCompare:
		return c.ioCompare(p, cmd)
	case IOWriteZeroes:
		return c.ioWriteZeroes(p, cmd)
	case IODSM:
		return c.ioDSM(p, cmd)
	case IOResvRegister:
		return c.ioResvRegister(p, qid, cmd)
	case IOResvAcquire:
		return c.ioResvAcquire(p, qid, cmd)
	case IOResvRelease:
		return c.ioResvRelease(p, qid, cmd)
	case IOResvReport:
		return c.ioResvReport(p, cmd)
	default:
		return Status(SCTGeneric, SCInvalidOpcode)
	}
}

// ioCompare reads the addressed blocks and compares them with the
// host-supplied data; mismatch completes with Compare Failure.
func (c *Controller) ioCompare(p *sim.Proc, cmd *SQE) uint16 {
	slba := uint64(cmd.CDW10) | uint64(cmd.CDW11)<<32
	nlb := int(cmd.CDW12&0xFFFF) + 1
	if slba+uint64(nlb) > c.med.Blocks() {
		return Status(SCTGeneric, SCLBAOutOfRange)
	}
	n := nlb * c.med.BlockSize()
	host := make([]byte, n)
	if st := c.readPRP(p, cmd.PRP1, cmd.PRP2, host); st != StatusOK {
		return st
	}
	media := make([]byte, n)
	if err := c.med.Read(p, slba, nlb, media); err != nil {
		return Status(SCTMediaError, SCDataTransfer)
	}
	for i := range host {
		if host[i] != media[i] {
			return Status(SCTMediaError, SCCompareFailure)
		}
	}
	return StatusOK
}

// ioWriteZeroes deallocates the addressed blocks (they read back as
// zeros) without any data transfer.
func (c *Controller) ioWriteZeroes(p *sim.Proc, cmd *SQE) uint16 {
	slba := uint64(cmd.CDW10) | uint64(cmd.CDW11)<<32
	nlb := int(cmd.CDW12&0xFFFF) + 1
	if slba+uint64(nlb) > c.med.Blocks() {
		return Status(SCTGeneric, SCLBAOutOfRange)
	}
	if err := c.med.Trim(p, slba, nlb); err != nil {
		return Status(SCTMediaError, SCDataTransfer)
	}
	return StatusOK
}

// ioDSM handles Dataset Management; only the deallocate attribute has an
// effect (as on most SSDs).
func (c *Controller) ioDSM(p *sim.Proc, cmd *SQE) uint16 {
	nr := int(cmd.CDW10&0xFF) + 1
	if nr > DSMMaxRanges {
		return Status(SCTGeneric, SCInvalidField)
	}
	raw := make([]byte, nr*DSMRangeSize)
	if st := c.readPRP(p, cmd.PRP1, cmd.PRP2, raw); st != StatusOK {
		return st
	}
	if cmd.CDW11&DSMAttrDeallocate == 0 {
		return StatusOK // hints only; nothing to do
	}
	for i := 0; i < nr; i++ {
		entry := raw[i*DSMRangeSize:]
		nlb := binary.LittleEndian.Uint32(entry[4:])
		slba := binary.LittleEndian.Uint64(entry[8:])
		if nlb == 0 {
			continue
		}
		if slba+uint64(nlb) > c.med.Blocks() {
			return Status(SCTGeneric, SCLBAOutOfRange)
		}
		if err := c.med.Trim(p, slba, int(nlb)); err != nil {
			return Status(SCTMediaError, SCDataTransfer)
		}
	}
	return StatusOK
}

func (c *Controller) ioRead(p *sim.Proc, qid uint16, cmd *SQE) uint16 {
	slba := uint64(cmd.CDW10) | uint64(cmd.CDW11)<<32
	nlb := int(cmd.CDW12&0xFFFF) + 1
	if slba+uint64(nlb) > c.med.Blocks() {
		return Status(SCTGeneric, SCLBAOutOfRange)
	}
	n := nlb * c.med.BlockSize()
	buf := make([]byte, n)
	t0 := p.Now()
	if err := c.med.Read(p, slba, nlb, buf); err != nil {
		c.Stats.MediaErrs++
		return Status(SCTMediaError, SCUnrecoveredRead)
	}
	c.tracer.Hop(qid, cmd.CID, trace.StageMedium, t0, p.Now())
	t0 = p.Now()
	if st := c.writePRP(p, cmd.PRP1, cmd.PRP2, buf); st != StatusOK {
		return st
	}
	c.tracer.HopNote(qid, cmd.CID, trace.StageDataXfer, t0, p.Now(), uint64(n))
	c.Stats.ReadCmds++
	c.qstats[qid].ReadCmds++
	return StatusOK
}

func (c *Controller) ioWrite(p *sim.Proc, qid uint16, cmd *SQE) uint16 {
	slba := uint64(cmd.CDW10) | uint64(cmd.CDW11)<<32
	nlb := int(cmd.CDW12&0xFFFF) + 1
	if slba+uint64(nlb) > c.med.Blocks() {
		return Status(SCTGeneric, SCLBAOutOfRange)
	}
	n := nlb * c.med.BlockSize()
	buf := make([]byte, n)
	t0 := p.Now()
	if st := c.readPRP(p, cmd.PRP1, cmd.PRP2, buf); st != StatusOK {
		return st
	}
	c.tracer.HopNote(qid, cmd.CID, trace.StageDataXfer, t0, p.Now(), uint64(n))
	t0 = p.Now()
	if err := c.med.Write(p, slba, nlb, buf); err != nil {
		c.Stats.MediaErrs++
		return Status(SCTMediaError, SCWriteFault)
	}
	c.tracer.Hop(qid, cmd.CID, trace.StageMedium, t0, p.Now())
	c.Stats.WriteCmds++
	c.qstats[qid].WriteCmds++
	return StatusOK
}

// prpSegment is one contiguous DMA target.
type prpSegment struct {
	addr pcie.Addr
	n    int
}

// prpSegments walks PRP1/PRP2 for a transfer of total bytes, issuing the
// DMA reads needed to fetch PRP list pages (those reads cost fabric
// latency, just like on hardware).
func (c *Controller) prpSegments(p *sim.Proc, prp1, prp2 uint64, total int) ([]prpSegment, uint16) {
	if total <= 0 {
		return nil, Status(SCTGeneric, SCInvalidField)
	}
	var segs []prpSegment
	first := PageSize - int(prp1%PageSize)
	if first > total {
		first = total
	}
	segs = append(segs, prpSegment{addr: prp1, n: first})
	remain := total - first
	if remain == 0 {
		return segs, StatusOK
	}
	if remain <= PageSize {
		if prp2%PageSize != 0 || prp2 == 0 {
			return nil, Status(SCTGeneric, SCInvalidField)
		}
		segs = append(segs, prpSegment{addr: prp2, n: remain})
		return segs, StatusOK
	}
	// PRP list walk. Each list page holds PageSize/8 entries; if more
	// entries are needed than fit, the last entry chains to the next
	// list page.
	listAddr := prp2
	for remain > 0 {
		if listAddr%8 != 0 || listAddr == 0 {
			return nil, Status(SCTGeneric, SCInvalidField)
		}
		entriesNeeded := (remain + PageSize - 1) / PageSize
		perPage := PageSize / 8
		chain := false
		count := entriesNeeded
		if count > perPage {
			count = perPage - 1 // last slot chains
			chain = true
		}
		listBytes := make([]byte, (count+btoi(chain))*8)
		if err := c.dmaRead(p, listAddr, listBytes); err != nil {
			return nil, Status(SCTGeneric, SCDataTransfer)
		}
		for i := 0; i < count; i++ {
			e := binary.LittleEndian.Uint64(listBytes[i*8:])
			if e%PageSize != 0 || e == 0 {
				return nil, Status(SCTGeneric, SCInvalidField)
			}
			n := PageSize
			if n > remain {
				n = remain
			}
			segs = append(segs, prpSegment{addr: e, n: n})
			remain -= n
			if remain == 0 {
				break
			}
		}
		if remain > 0 {
			if !chain {
				return nil, Status(SCTGeneric, SCInvalidField)
			}
			listAddr = binary.LittleEndian.Uint64(listBytes[count*8:])
		}
	}
	return segs, StatusOK
}

func btoi(b bool) int {
	if b {
		return 1
	}
	return 0
}

// coalesce merges physically contiguous PRP segments so the DMA engine
// issues one large, pipelined transfer per contiguous region instead of a
// round trip per page — as real controllers do.
func coalesce(segs []prpSegment) []prpSegment {
	if len(segs) < 2 {
		return segs
	}
	out := segs[:1]
	for _, s := range segs[1:] {
		last := &out[len(out)-1]
		if last.addr+pcie.Addr(last.n) == s.addr {
			last.n += s.n
			continue
		}
		out = append(out, s)
	}
	return out
}

// writePRP DMA-writes data out to the PRP-described buffers (posted).
func (c *Controller) writePRP(p *sim.Proc, prp1, prp2 uint64, data []byte) uint16 {
	segs, st := c.prpSegments(p, prp1, prp2, len(data))
	if st != StatusOK {
		return st
	}
	off := 0
	for _, s := range coalesce(segs) {
		if err := c.dmaWrite(p, s.addr, data[off:off+s.n]); err != nil {
			return Status(SCTGeneric, SCDataTransfer)
		}
		off += s.n
	}
	return StatusOK
}

// readPRP DMA-reads the PRP-described buffers into buf (non-posted: each
// segment costs a round trip — this asymmetry is why remote writes cost
// more than remote reads in the paper's Figure 10).
func (c *Controller) readPRP(p *sim.Proc, prp1, prp2 uint64, buf []byte) uint16 {
	segs, st := c.prpSegments(p, prp1, prp2, len(buf))
	if st != StatusOK {
		return st
	}
	off := 0
	for _, s := range coalesce(segs) {
		if err := c.dmaRead(p, s.addr, buf[off:off+s.n]); err != nil {
			return Status(SCTGeneric, SCDataTransfer)
		}
		off += s.n
	}
	return StatusOK
}

func log2(n int) uint8 {
	var l uint8
	for n > 1 {
		n >>= 1
		l++
	}
	return l
}
