package nvme

import (
	"errors"
	"testing"

	"repro/internal/memory"
	"repro/internal/pcie"
	"repro/internal/sim"
)

// TestEnableTimeout uses a controller whose enable transition exceeds
// CAP.TO: the admin client must give up with ErrTimeout rather than spin
// forever.
func TestEnableTimeout(t *testing.T) {
	k := sim.NewKernel()
	dom := pcie.NewDomain("h", k, pcie.LinkParams{})
	rc := dom.AddNode(pcie.RootComplex, "rc")
	ep := dom.AddNode(pcie.Endpoint, "nvme")
	if err := dom.Connect(rc, ep); err != nil {
		t.Fatal(err)
	}
	mem := memory.New(0x100000, 8<<20)
	host, err := pcie.NewHostPort(dom, rc, mem, pcie.CPUParams{})
	if err != nil {
		t.Fatal(err)
	}
	med := NewFlashMedium(k, 512, 1<<20, FlashParams{}, 1)
	// CAP.TO is 10 s; a 20 s enable delay must trip the timeout.
	_, err = New("slow", dom, ep, pcie.Range{Base: rigBARBase, Size: rigBARSize}, med,
		Params{EnableDelayNs: 20 * sim.Second})
	if err != nil {
		t.Fatal(err)
	}
	var got error
	k.Spawn("drv", func(p *sim.Proc) {
		a := NewAdminClient(host, rigBARBase)
		got = a.Enable(p, 16)
	})
	k.RunAll()
	k.Shutdown()
	if !errors.Is(got, ErrTimeout) {
		t.Fatalf("got %v, want ErrTimeout", got)
	}
}

// TestAdminExecBeforeEnable must fail cleanly, not crash.
func TestAdminExecBeforeEnable(t *testing.T) {
	r := newRig(t)
	r.run(t, func(p *sim.Proc) {
		a := NewAdminClient(r.host, rigBARBase)
		cmd := SQE{Opcode: AdminIdentify, CDW10: CNSController}
		if _, err := a.Exec(p, &cmd); err == nil {
			t.Error("Exec on uninitialized admin queue succeeded")
		}
	})
}

// TestEnableClampsDepth: requested admin depth beyond CAP.MQES is clamped
// rather than rejected.
func TestEnableClampsDepth(t *testing.T) {
	r := newRig(t)
	r.run(t, func(p *sim.Proc) {
		a := NewAdminClient(r.host, rigBARBase)
		if err := a.Enable(p, 1<<20); err != nil {
			t.Fatalf("huge depth: %v", err)
		}
		if a.Admin.Size != int(a.MQES)+1 {
			t.Fatalf("depth %d, want clamped to %d", a.Admin.Size, a.MQES+1)
		}
		// And a tiny depth is raised to the minimum of 2.
		if err := a.Enable(p, 1); err != nil {
			t.Fatalf("tiny depth: %v", err)
		}
		if a.Admin.Size != 2 {
			t.Fatalf("depth %d, want 2", a.Admin.Size)
		}
	})
}
