// Package qos tracks per-tenant service-level objectives over the
// shared device and throttles tenants that blow their tail-latency
// budget.
//
// The feedback loop closes entirely at the client side, mirroring the
// paper's single-function constraint: a commodity NVMe controller
// offers WRR arbitration between queues but no per-tenant policing, so
// any finer-grained QoS must happen before commands reach the shared
// submission queues. The Controller therefore sits between the arrival
// engine and the core client:
//
//	arrival.Engine → Controller.Admit (shed?) → core.Client → device
//	        ↑                                        │
//	        └──────── Controller.Observe ←───────────┘ (per-IO latency)
//
// Every WindowNs of virtual time a tracker window closes: the interval
// p99/p99.9 (from stats.HistWindow over the tenant's running power
// histogram) is compared against the tenant's SLO. ViolateAfter
// consecutive bad windows trip AIMD throttling — the tenant's admit
// fraction is multiplicatively decreased, shedding a deterministic
// subset of its arrivals — and RecoverAfter consecutive clean windows
// walk it back up additively. Admission decisions use a counted-ratio
// pacer rather than a random draw, keeping the whole control loop
// byte-reproducible for a fixed seed.
package qos

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/stats"
)

// SLO is a tenant's tail-latency budget in virtual nanoseconds. A zero
// field is unchecked.
type SLO struct {
	P99Ns  int64
	P999Ns int64
}

// TenantConfig names a tenant and sets its objective. Tenants with a
// zero SLO are tracked but never throttled (best-effort class).
type TenantConfig struct {
	Name string
	SLO  SLO
	// Exempt tenants are tracked — windows, violations, percentiles —
	// but never throttled. This is the latency-critical class: when its
	// tail blows up, the cause is interference, and shedding the victim
	// would only hand its capacity to the aggressor. Only tenants
	// willing to trade throughput for the cluster's health (bulk,
	// best-effort) leave Exempt unset.
	Exempt bool
}

// Params tunes the control loop. Zero fields take documented defaults.
type Params struct {
	// WindowNs is the SLO evaluation window (default 1ms virtual).
	WindowNs int64
	// ViolateAfter is how many consecutive violating windows trip
	// throttling (default 2 — one bad window is noise, two is a trend).
	ViolateAfter int
	// RecoverAfter is how many consecutive clean windows ease the
	// throttle one step (default 2).
	RecoverAfter int
	// Decrease is the multiplicative backoff applied to the admit
	// fraction on a trip (default 0.5).
	Decrease float64
	// Increase is the additive recovery step (default 0.1).
	Increase float64
	// MinAdmit floors the admit fraction so a throttled tenant keeps a
	// trickle of probes flowing — without them its windows go empty and
	// the loop could never observe recovery (default 0.05).
	MinAdmit float64
}

func (p Params) withDefaults() Params {
	if p.WindowNs <= 0 {
		p.WindowNs = int64(sim.Millisecond)
	}
	if p.ViolateAfter <= 0 {
		p.ViolateAfter = 2
	}
	if p.RecoverAfter <= 0 {
		p.RecoverAfter = 2
	}
	if p.Decrease <= 0 || p.Decrease >= 1 {
		p.Decrease = 0.5
	}
	if p.Increase <= 0 {
		p.Increase = 0.1
	}
	if p.MinAdmit <= 0 {
		p.MinAdmit = 0.05
	}
	return p
}

// tenant is the per-tenant control state.
type tenant struct {
	cfg  TenantConfig
	hist *stats.PowHistogram // lifetime latency histogram
	win  *stats.HistWindow   // interval view for windowed quantiles

	admitFrac float64
	seen      uint64 // arrivals observed this window
	admitted  uint64 // arrivals admitted this window

	badStreak   int
	cleanStreak int

	// Rolled-up counters for reporting and gauges.
	windows      uint64 // windows with at least one completion
	violations   uint64 // windows that violated the SLO
	throttleOps  uint64 // AIMD decrease events
	shedDecided  uint64 // Admit calls answered false
	lastP99Ns    float64
	lastP999Ns   float64
	lastWinCount uint64
}

// TenantSnapshot is a point-in-time view of one tenant's QoS state.
type TenantSnapshot struct {
	Name         string
	AdmitFrac    float64
	Windows      uint64
	Violations   uint64
	Throttles    uint64
	Sheds        uint64
	LastP99Ns    float64
	LastP999Ns   float64
	TotalCount   uint64
	TotalP99Ns   float64
	TotalP999Ns  float64
	TotalMeanNs  float64
	Violating    bool // currently in a violating streak
	Throttled    bool // admit fraction below 1
	SLOP99Ns     int64
	SLOP999Ns    int64
	LastWinCount uint64
}

// Controller runs the SLO tracking and admission loop for one client's
// tenant population. Not internally locked: the simulation kernel
// serialises all callers.
type Controller struct {
	params  Params
	tenants []*tenant
	ticker  *sim.Ticker
	qbuf    [2]float64
}

// NewController builds a controller for the given tenants and starts
// its evaluation ticker on k.
func NewController(k *sim.Kernel, params Params, tenants []TenantConfig) *Controller {
	c := &Controller{params: params.withDefaults()}
	for _, tc := range tenants {
		h := stats.NewPowHistogram(4)
		c.tenants = append(c.tenants, &tenant{
			cfg:       tc,
			hist:      h,
			win:       stats.NewHistWindow(h),
			admitFrac: 1.0,
		})
	}
	c.ticker = k.NewTicker(c.params.WindowNs, func(now sim.Time) { c.tick() })
	return c
}

// Stop halts the evaluation ticker.
func (c *Controller) Stop() { c.ticker.Stop() }

// Admit is the client-side gate (wired as core.Client's AdmitFunc): it
// decides deterministically whether tenant i's next arrival may
// proceed. Pacing is a counted ratio — admit while the running
// admitted/seen ratio stays at or below the admit fraction — so equal
// histories always yield equal decisions.
func (c *Controller) Admit(i int, now int64) bool {
	t := c.tenants[i]
	t.seen++
	if t.admitFrac >= 1.0 {
		t.admitted++
		return true
	}
	if float64(t.admitted+1) <= t.admitFrac*float64(t.seen) {
		t.admitted++
		return true
	}
	t.shedDecided++
	return false
}

// Observe records one completed request's latency for tenant i. Wire it
// to the arrival engine's OnComplete; errors (shed, faults) should not
// be observed — only served requests define the service-level tail.
func (c *Controller) Observe(i int, latNs int64) {
	c.tenants[i].hist.AddNs(latNs)
}

// tick closes the evaluation window for every tenant.
func (c *Controller) tick() {
	for _, t := range c.tenants {
		qs := []float64{99, 99.9}
		count, _ := t.win.Advance(qs, c.qbuf[:])
		t.lastWinCount = count
		if count == 0 {
			// No completions: an idle tenant is trivially clean; a
			// fully-shed one is kept alive by the MinAdmit trickle.
			t.seen, t.admitted = 0, 0
			continue
		}
		t.windows++
		t.lastP99Ns, t.lastP999Ns = c.qbuf[0], c.qbuf[1]
		violated := false
		if s := t.cfg.SLO; s.P99Ns > 0 && t.lastP99Ns > float64(s.P99Ns) {
			violated = true
		} else if s.P999Ns > 0 && t.lastP999Ns > float64(s.P999Ns) {
			violated = true
		}
		if violated {
			t.violations++
			t.badStreak++
			t.cleanStreak = 0
			if !t.cfg.Exempt && t.badStreak >= c.params.ViolateAfter {
				t.admitFrac *= c.params.Decrease
				if t.admitFrac < c.params.MinAdmit {
					t.admitFrac = c.params.MinAdmit
				}
				t.throttleOps++
				t.badStreak = 0
			}
		} else {
			t.cleanStreak++
			t.badStreak = 0
			if t.cleanStreak >= c.params.RecoverAfter && t.admitFrac < 1.0 {
				t.admitFrac += c.params.Increase
				if t.admitFrac > 1.0 {
					t.admitFrac = 1.0
				}
				t.cleanStreak = 0
			}
		}
		// Fresh pacing ratio each window so the gate tracks the current
		// fraction instead of a stale lifetime average.
		t.seen, t.admitted = 0, 0
	}
}

// Snapshot returns tenant i's current state.
func (c *Controller) Snapshot(i int) TenantSnapshot {
	t := c.tenants[i]
	return TenantSnapshot{
		Name:         t.cfg.Name,
		AdmitFrac:    t.admitFrac,
		Windows:      t.windows,
		Violations:   t.violations,
		Throttles:    t.throttleOps,
		Sheds:        t.shedDecided,
		LastP99Ns:    t.lastP99Ns,
		LastP999Ns:   t.lastP999Ns,
		TotalCount:   t.hist.Count(),
		TotalP99Ns:   t.hist.Percentile(99),
		TotalP999Ns:  t.hist.Percentile(99.9),
		TotalMeanNs:  t.hist.Mean(),
		Violating:    t.badStreak > 0,
		Throttled:    t.admitFrac < 1.0,
		SLOP99Ns:     t.cfg.SLO.P99Ns,
		SLOP999Ns:    t.cfg.SLO.P999Ns,
		LastWinCount: t.lastWinCount,
	}
}

// Tenants returns the tenant count.
func (c *Controller) Tenants() int { return len(c.tenants) }

// TotalViolations sums SLO-violating windows across tenants.
func (c *Controller) TotalViolations() uint64 {
	var n uint64
	for _, t := range c.tenants {
		n += t.violations
	}
	return n
}

// TotalThrottles sums AIMD decrease events across tenants.
func (c *Controller) TotalThrottles() uint64 {
	var n uint64
	for _, t := range c.tenants {
		n += t.throttleOps
	}
	return n
}

// TotalSheds sums refused admissions across tenants.
func (c *Controller) TotalSheds() uint64 {
	var n uint64
	for _, t := range c.tenants {
		n += t.shedDecided
	}
	return n
}

// MinAdmitFrac returns the lowest admit fraction across tenants — 1.0
// means nobody is throttled.
func (c *Controller) MinAdmitFrac() float64 {
	min := 1.0
	for _, t := range c.tenants {
		if t.admitFrac < min {
			min = t.admitFrac
		}
	}
	return min
}

func (s TenantSnapshot) String() string {
	return fmt.Sprintf("%s admit=%.2f windows=%d viol=%d p99=%.0fns p99.9=%.0fns",
		s.Name, s.AdmitFrac, s.Windows, s.Violations, s.TotalP99Ns, s.TotalP999Ns)
}
