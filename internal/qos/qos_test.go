package qos

import (
	"testing"

	"repro/internal/sim"
)

// feed records lat for tenant i across enough windows to move the loop.
func tickN(k *sim.Kernel, n int, winNs int64) {
	// Tickers only fire while the kernel runs; idle-spin a proc across
	// the windows.
	k.Spawn("drive", func(p *sim.Proc) {
		p.Sleep(sim.Time(n) * winNs)
	})
	k.RunAll()
}

func TestViolationTripsThrottleAndRecovers(t *testing.T) {
	k := sim.NewKernel()
	win := int64(sim.Millisecond)
	c := NewController(k, Params{WindowNs: win, ViolateAfter: 2, RecoverAfter: 2, Decrease: 0.5, Increase: 0.25},
		[]TenantConfig{{Name: "lat", SLO: SLO{P99Ns: 100_000}}})
	defer c.Stop()

	// Phase 1: four windows of 1ms latencies — way over a 100µs p99 SLO.
	k.Spawn("load", func(p *sim.Proc) {
		for w := 0; w < 4; w++ {
			for i := 0; i < 50; i++ {
				c.Observe(0, int64(sim.Millisecond))
			}
			p.Sleep(win)
		}
	})
	k.RunAll()
	s := c.Snapshot(0)
	if s.Violations < 3 {
		t.Fatalf("violations = %d, want >= 3", s.Violations)
	}
	if !s.Throttled || s.Throttles == 0 {
		t.Fatalf("expected throttling after sustained violation: %+v", s)
	}
	fracAfterTrip := s.AdmitFrac

	// Phase 2: six clean windows — admit fraction must walk back up.
	k.Spawn("recover", func(p *sim.Proc) {
		for w := 0; w < 6; w++ {
			for i := 0; i < 50; i++ {
				c.Observe(0, int64(10*sim.Microsecond))
			}
			p.Sleep(win)
		}
	})
	k.RunAll()
	s = c.Snapshot(0)
	if s.AdmitFrac <= fracAfterTrip {
		t.Fatalf("admit fraction did not recover: %.2f -> %.2f", fracAfterTrip, s.AdmitFrac)
	}
}

func TestZeroSLONeverThrottles(t *testing.T) {
	k := sim.NewKernel()
	win := int64(sim.Millisecond)
	c := NewController(k, Params{WindowNs: win}, []TenantConfig{{Name: "be"}})
	defer c.Stop()
	k.Spawn("load", func(p *sim.Proc) {
		for w := 0; w < 5; w++ {
			for i := 0; i < 20; i++ {
				c.Observe(0, int64(10*sim.Millisecond))
			}
			p.Sleep(win)
		}
	})
	k.RunAll()
	s := c.Snapshot(0)
	if s.Violations != 0 || s.Throttled {
		t.Fatalf("best-effort tenant must never violate or throttle: %+v", s)
	}
	if s.Windows == 0 {
		t.Fatal("windows were not evaluated")
	}
}

// TestAdmitPacingRatio: at admit fraction f the counted-ratio pacer
// must admit within one request of f*N over any prefix, deterministically.
func TestAdmitPacingRatio(t *testing.T) {
	k := sim.NewKernel()
	c := NewController(k, Params{}, []TenantConfig{{Name: "t", SLO: SLO{P99Ns: 1}}})
	defer c.Stop()
	c.tenants[0].admitFrac = 0.3
	admitted := 0
	const n = 1000
	for i := 0; i < n; i++ {
		if c.Admit(0, int64(i)) {
			admitted++
		}
	}
	if admitted < 299 || admitted > 301 {
		t.Fatalf("admitted %d/%d at frac 0.3", admitted, n)
	}
	// Determinism: a second identical history gives identical decisions.
	c2 := NewController(k, Params{}, []TenantConfig{{Name: "t", SLO: SLO{P99Ns: 1}}})
	defer c2.Stop()
	c2.tenants[0].admitFrac = 0.3
	for i := 0; i < n; i++ {
		c2.Admit(0, int64(i))
	}
	if c2.TotalSheds() != c.TotalSheds() {
		t.Fatalf("pacer not deterministic: sheds %d vs %d", c.TotalSheds(), c2.TotalSheds())
	}
}

func TestMinAdmitFloor(t *testing.T) {
	k := sim.NewKernel()
	win := int64(sim.Millisecond)
	c := NewController(k, Params{WindowNs: win, ViolateAfter: 1, Decrease: 0.1, MinAdmit: 0.2},
		[]TenantConfig{{Name: "t", SLO: SLO{P99Ns: 1_000}}})
	defer c.Stop()
	k.Spawn("load", func(p *sim.Proc) {
		for w := 0; w < 10; w++ {
			for i := 0; i < 30; i++ {
				c.Observe(0, int64(sim.Millisecond))
			}
			p.Sleep(win)
		}
	})
	k.RunAll()
	if f := c.Snapshot(0).AdmitFrac; f < 0.2 {
		t.Fatalf("admit fraction %.3f fell below MinAdmit 0.2", f)
	}
	if c.MinAdmitFrac() != c.Snapshot(0).AdmitFrac {
		t.Fatal("MinAdmitFrac mismatch")
	}
}
