package block

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/sim"
)

// memDevice is an in-memory Device with a fixed per-op latency, recording
// the chunk sizes it sees (to verify splitting).
type memDevice struct {
	name   string
	bs     int
	blocks uint64
	data   map[uint64][]byte
	latNs  int64
	chunks []int
}

func newMemDevice(bs int, blocks uint64, latNs int64) *memDevice {
	return &memDevice{name: "memdev", bs: bs, blocks: blocks, data: make(map[uint64][]byte), latNs: latNs}
}

func (d *memDevice) Name() string   { return d.name }
func (d *memDevice) BlockSize() int { return d.bs }
func (d *memDevice) Blocks() uint64 { return d.blocks }
func (d *memDevice) Flush(p *sim.Proc) error {
	p.Sleep(d.latNs)
	return nil
}

func (d *memDevice) ReadBlocks(p *sim.Proc, lba uint64, nblk int, buf []byte) error {
	p.Sleep(d.latNs)
	d.chunks = append(d.chunks, nblk)
	for i := 0; i < nblk; i++ {
		dst := buf[i*d.bs : (i+1)*d.bs]
		if b, ok := d.data[lba+uint64(i)]; ok {
			copy(dst, b)
		} else {
			for j := range dst {
				dst[j] = 0
			}
		}
	}
	return nil
}

func (d *memDevice) WriteBlocks(p *sim.Proc, lba uint64, nblk int, data []byte) error {
	p.Sleep(d.latNs)
	d.chunks = append(d.chunks, nblk)
	for i := 0; i < nblk; i++ {
		b := make([]byte, d.bs)
		copy(b, data[i*d.bs:(i+1)*d.bs])
		d.data[lba+uint64(i)] = b
	}
	return nil
}

func run(t *testing.T, fn func(k *sim.Kernel, p *sim.Proc)) {
	t.Helper()
	k := sim.NewKernel()
	k.Spawn("test", func(p *sim.Proc) { fn(k, p) })
	k.RunAll()
	k.Shutdown()
}

func TestSubmitAndWaitRoundTrip(t *testing.T) {
	run(t, func(k *sim.Kernel, p *sim.Proc) {
		dev := newMemDevice(512, 1024, 1000)
		q := NewQueue(k, dev, QueueParams{})
		want := bytes.Repeat([]byte{0x3C}, 512*4)
		if err := q.SubmitAndWait(p, OpWrite, 8, 4, want); err != nil {
			t.Fatal(err)
		}
		got := make([]byte, 512*4)
		if err := q.SubmitAndWait(p, OpRead, 8, 4, got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatal("data mismatch")
		}
		if q.Submitted != 2 || q.Completed != 2 {
			t.Fatalf("counters %d/%d", q.Submitted, q.Completed)
		}
	})
}

func TestValidation(t *testing.T) {
	run(t, func(k *sim.Kernel, p *sim.Proc) {
		dev := newMemDevice(512, 100, 10)
		q := NewQueue(k, dev, QueueParams{})
		if err := q.SubmitAndWait(p, OpRead, 99, 2, make([]byte, 1024)); !errors.Is(err, ErrOutOfRange) {
			t.Fatalf("OOB: %v", err)
		}
		if err := q.SubmitAndWait(p, OpRead, 0, 0, nil); !errors.Is(err, ErrBadRequest) {
			t.Fatalf("nblk=0: %v", err)
		}
		if err := q.SubmitAndWait(p, OpRead, 0, 2, make([]byte, 512)); !errors.Is(err, ErrBadRequest) {
			t.Fatalf("short buf: %v", err)
		}
	})
}

func TestFlushNeedsNoData(t *testing.T) {
	run(t, func(k *sim.Kernel, p *sim.Proc) {
		dev := newMemDevice(512, 100, 10)
		q := NewQueue(k, dev, QueueParams{})
		if err := q.SubmitAndWait(p, OpFlush, 0, 0, nil); err != nil {
			t.Fatal(err)
		}
	})
}

func TestSplitting(t *testing.T) {
	run(t, func(k *sim.Kernel, p *sim.Proc) {
		dev := newMemDevice(512, 10000, 10)
		q := NewQueue(k, dev, QueueParams{MaxBlocks: 64})
		data := make([]byte, 512*200)
		for i := range data {
			data[i] = byte(i)
		}
		if err := q.SubmitAndWait(p, OpWrite, 0, 200, data); err != nil {
			t.Fatal(err)
		}
		want := []int{64, 64, 64, 8}
		if len(dev.chunks) != len(want) {
			t.Fatalf("chunks %v, want %v", dev.chunks, want)
		}
		for i := range want {
			if dev.chunks[i] != want[i] {
				t.Fatalf("chunks %v, want %v", dev.chunks, want)
			}
		}
		got := make([]byte, len(data))
		if err := q.SubmitAndWait(p, OpRead, 0, 200, got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, data) {
			t.Fatal("split write corrupted data")
		}
	})
}

func TestParallelWorkers(t *testing.T) {
	k := sim.NewKernel()
	dev := newMemDevice(512, 10000, 1000)
	q := NewQueue(k, dev, QueueParams{Workers: 4})
	var end sim.Time
	for i := 0; i < 8; i++ {
		lba := uint64(i * 10)
		k.Spawn("io", func(p *sim.Proc) {
			if err := q.SubmitAndWait(p, OpRead, lba, 1, make([]byte, 512)); err != nil {
				t.Error(err)
			}
			if p.Now() > end {
				end = p.Now()
			}
		})
	}
	k.RunAll()
	k.Shutdown()
	// 8 requests, 4 workers, 1000 ns each: ~2 waves, far below serial 8000.
	if end >= 8000 {
		t.Fatalf("8 requests finished at %d; workers not parallel", end)
	}
}

func TestRequestErrPropagation(t *testing.T) {
	run(t, func(k *sim.Kernel, p *sim.Proc) {
		dev := newMemDevice(512, 100, 10)
		q := NewQueue(k, dev, QueueParams{})
		req := &Request{Op: OpRead, LBA: 0, Nblk: 1, Data: make([]byte, 512), Done: sim.NewEvent(k)}
		if err := q.Submit(p, req); err != nil {
			t.Fatal(err)
		}
		p.Wait(req.Done)
		if req.Err() != nil {
			t.Fatalf("unexpected error %v", req.Err())
		}
	})
}

func TestRegistry(t *testing.T) {
	k := sim.NewKernel()
	r := NewRegistry()
	dev := newMemDevice(512, 100, 10)
	if _, err := r.Register(k, dev, QueueParams{}); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Register(k, dev, QueueParams{}); err == nil {
		t.Fatal("duplicate registration accepted")
	}
	if _, err := r.Get("memdev"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Get("nope"); err == nil {
		t.Fatal("missing device found")
	}
	if len(r.Names()) != 1 {
		t.Fatal("names wrong")
	}
	k.Shutdown()
}

func TestOpString(t *testing.T) {
	if OpRead.String() != "read" || OpWrite.String() != "write" ||
		OpFlush.String() != "flush" || Op(9).String() != "unknown" {
		t.Fatal("Op.String broken")
	}
}
