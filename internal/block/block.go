// Package block is a miniature Linux-block-layer facsimile: drivers
// register block devices, upper layers submit requests to per-device
// request queues, worker contexts dispatch them to the driver, and
// completion is signaled through events. It adds the per-request software
// cost that sits between a filesystem/benchmark and any NVMe driver.
package block

import (
	"errors"
	"fmt"

	"repro/internal/sim"
	"repro/internal/stats"
)

// Device is the driver-side interface a block device implements.
type Device interface {
	// Name returns the device name (e.g. "nvme0n1").
	Name() string
	// BlockSize returns the logical block size in bytes.
	BlockSize() int
	// Blocks returns the capacity in logical blocks.
	Blocks() uint64
	// ReadBlocks fills buf from [lba, lba+nblk).
	ReadBlocks(p *sim.Proc, lba uint64, nblk int, buf []byte) error
	// WriteBlocks stores data to [lba, lba+nblk).
	WriteBlocks(p *sim.Proc, lba uint64, nblk int, data []byte) error
	// Flush persists outstanding writes.
	Flush(p *sim.Proc) error
}

// Op is a request operation.
type Op int

// Request operations.
const (
	OpRead Op = iota
	OpWrite
	OpFlush
	// OpDiscard deallocates blocks (TRIM); the device must implement
	// Discarder.
	OpDiscard
	// OpWriteZeroes zeroes blocks without data transfer; the device must
	// implement ZeroWriter.
	OpWriteZeroes
)

func (o Op) String() string {
	switch o {
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	case OpFlush:
		return "flush"
	case OpDiscard:
		return "discard"
	case OpWriteZeroes:
		return "write-zeroes"
	}
	return "unknown"
}

// Discarder is implemented by devices supporting TRIM/deallocate.
type Discarder interface {
	DiscardBlocks(p *sim.Proc, lba uint64, nblk int) error
}

// ZeroWriter is implemented by devices supporting Write Zeroes.
type ZeroWriter interface {
	WriteZeroesBlocks(p *sim.Proc, lba uint64, nblk int) error
}

// ErrUnsupported is returned for operations the device does not implement.
var ErrUnsupported = errors.New("block: operation not supported by device")

// Errors returned by the request layer.
var (
	ErrOutOfRange = errors.New("block: request beyond device capacity")
	ErrBadRequest = errors.New("block: malformed request")
	ErrStopped    = errors.New("block: queue stopped")
)

// Request is one block I/O.
type Request struct {
	Op   Op
	LBA  uint64
	Nblk int
	// Data is the destination for reads and the source for writes.
	Data []byte
	// Done triggers when the request completes; its payload is the error
	// (nil on success).
	Done *sim.Event

	submitted sim.Time
}

// Err extracts the completion error after Done has triggered.
func (r *Request) Err() error {
	if v := r.Done.Payload(); v != nil {
		return v.(error)
	}
	return nil
}

// QueueParams tunes a request queue.
type QueueParams struct {
	// SubmitNs is the block-layer software cost charged on submission.
	SubmitNs int64
	// CompleteNs is the block-layer completion-path cost.
	CompleteNs int64
	// MaxBlocks splits larger requests into chunks (0 = no splitting).
	MaxBlocks int
	// Workers is the number of dispatch contexts (default 16).
	Workers int
}

// DefaultQueueParams returns the standard block layer calibration.
func DefaultQueueParams() QueueParams {
	return QueueParams{SubmitNs: 200, CompleteNs: 150, MaxBlocks: 2048, Workers: 16}
}

func (qp QueueParams) withDefaults() QueueParams {
	d := DefaultQueueParams()
	if qp.SubmitNs == 0 {
		qp.SubmitNs = d.SubmitNs
	}
	if qp.CompleteNs == 0 {
		qp.CompleteNs = d.CompleteNs
	}
	if qp.MaxBlocks == 0 {
		qp.MaxBlocks = d.MaxBlocks
	}
	if qp.Workers == 0 {
		qp.Workers = d.Workers
	}
	return qp
}

// Queue is a per-device request queue with a fixed pool of dispatch
// workers.
type Queue struct {
	dev    Device
	kernel *sim.Kernel
	params QueueParams
	q      *sim.Queue

	// Submitted and Completed count requests for observability.
	Submitted uint64
	Completed uint64

	latHist *stats.PowHistogram
}

// SetLatencyHist attaches a histogram that records each request's
// submit-to-completion latency in virtual ns. Pure accounting: it adds
// no simulated cost and never touches the kernel, so attaching it leaves
// virtual-time results bit-identical. Pass nil to detach.
func (q *Queue) SetLatencyHist(h *stats.PowHistogram) { q.latHist = h }

// NewQueue creates the request queue and starts its workers.
func NewQueue(k *sim.Kernel, dev Device, params QueueParams) *Queue {
	q := &Queue{dev: dev, kernel: k, params: params.withDefaults(), q: sim.NewQueue(k)}
	for i := 0; i < q.params.Workers; i++ {
		k.Spawn(fmt.Sprintf("blk/%s/w%d", dev.Name(), i), q.worker)
	}
	return q
}

// Device returns the backing device.
func (q *Queue) Device() Device { return q.dev }

// Submit validates and enqueues req, charging the submission cost. The
// caller waits on req.Done for completion.
func (q *Queue) Submit(p *sim.Proc, req *Request) error {
	if req.Done == nil {
		req.Done = sim.NewEvent(q.kernel)
	}
	if err := q.validate(req); err != nil {
		return err
	}
	p.Sleep(q.params.SubmitNs)
	req.submitted = p.Now()
	q.Submitted++
	q.q.Push(req)
	return nil
}

func (q *Queue) validate(req *Request) error {
	if req.Op == OpFlush {
		return nil
	}
	if req.Nblk <= 0 {
		return fmt.Errorf("%w: nblk=%d", ErrBadRequest, req.Nblk)
	}
	if req.LBA+uint64(req.Nblk) > q.dev.Blocks() {
		return fmt.Errorf("%w: lba %d + %d > %d", ErrOutOfRange, req.LBA, req.Nblk, q.dev.Blocks())
	}
	if req.Op == OpDiscard || req.Op == OpWriteZeroes {
		return nil // no data payload
	}
	if len(req.Data) != req.Nblk*q.dev.BlockSize() {
		return fmt.Errorf("%w: data %d bytes for %d blocks", ErrBadRequest, len(req.Data), req.Nblk)
	}
	return nil
}

// SubmitAndWait is a convenience wrapper: submit, block until done,
// return the I/O error.
func (q *Queue) SubmitAndWait(p *sim.Proc, op Op, lba uint64, nblk int, data []byte) error {
	req := &Request{Op: op, LBA: lba, Nblk: nblk, Data: data, Done: sim.NewEvent(q.kernel)}
	if err := q.Submit(p, req); err != nil {
		return err
	}
	p.Wait(req.Done)
	return req.Err()
}

func (q *Queue) worker(p *sim.Proc) {
	for {
		req := p.Pop(q.q).(*Request)
		err := q.dispatch(p, req)
		p.Sleep(q.params.CompleteNs)
		q.Completed++
		if q.latHist != nil {
			q.latHist.AddNs(p.Now() - req.submitted)
		}
		if err != nil {
			req.Done.Trigger(err)
		} else {
			req.Done.Trigger(nil)
		}
	}
}

// dispatch runs one request, splitting it per MaxBlocks.
func (q *Queue) dispatch(p *sim.Proc, req *Request) error {
	switch req.Op {
	case OpFlush:
		return q.dev.Flush(p)
	case OpDiscard:
		d, ok := q.dev.(Discarder)
		if !ok {
			return fmt.Errorf("%w: discard on %s", ErrUnsupported, q.dev.Name())
		}
		return d.DiscardBlocks(p, req.LBA, req.Nblk)
	case OpWriteZeroes:
		z, ok := q.dev.(ZeroWriter)
		if !ok {
			return fmt.Errorf("%w: write-zeroes on %s", ErrUnsupported, q.dev.Name())
		}
		return z.WriteZeroesBlocks(p, req.LBA, req.Nblk)
	case OpRead, OpWrite:
		bs := q.dev.BlockSize()
		lba, nblk := req.LBA, req.Nblk
		off := 0
		for nblk > 0 {
			chunk := nblk
			if chunk > q.params.MaxBlocks {
				chunk = q.params.MaxBlocks
			}
			data := req.Data[off : off+chunk*bs]
			var err error
			if req.Op == OpRead {
				err = q.dev.ReadBlocks(p, lba, chunk, data)
			} else {
				err = q.dev.WriteBlocks(p, lba, chunk, data)
			}
			if err != nil {
				return err
			}
			lba += uint64(chunk)
			nblk -= chunk
			off += chunk * bs
		}
		return nil
	default:
		return fmt.Errorf("%w: op %d", ErrBadRequest, req.Op)
	}
}

// Registry names block devices, as the kernel's gendisk table does.
type Registry struct {
	disks map[string]*Queue
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{disks: make(map[string]*Queue)}
}

// Register adds a device under its own name and returns its queue.
func (r *Registry) Register(k *sim.Kernel, dev Device, params QueueParams) (*Queue, error) {
	if _, ok := r.disks[dev.Name()]; ok {
		return nil, fmt.Errorf("block: device %q exists", dev.Name())
	}
	q := NewQueue(k, dev, params)
	r.disks[dev.Name()] = q
	return q, nil
}

// Get returns a registered device's queue.
func (r *Registry) Get(name string) (*Queue, error) {
	q, ok := r.disks[name]
	if !ok {
		return nil, fmt.Errorf("block: no device %q", name)
	}
	return q, nil
}

// Names lists registered device names.
func (r *Registry) Names() []string {
	out := make([]string, 0, len(r.disks))
	for n := range r.disks {
		out = append(out, n)
	}
	return out
}
