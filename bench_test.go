// Package repro's benchmarks regenerate every quantitative artifact of
// the paper's evaluation (§VI). The simulation runs in virtual time, so
// each benchmark executes a bounded workload and reports *virtual*
// latency metrics (vmin/vmed/vp99 in microseconds, viops) alongside the
// meaningless wall-clock ns/op. Read EXPERIMENTS.md for the mapping from
// benchmarks to the paper's figures and claims.
package repro

import (
	"fmt"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/fio"
	"repro/internal/nvme"
	"repro/internal/pcie"
	"repro/internal/sim"
	"repro/internal/smartio"
	"repro/internal/stats"
)

// fig10IOs bounds each scenario run; enough for stable min/median/p99.
const fig10IOs = 1000

func runFig10(b *testing.B, s cluster.Scenario, op fio.Op) *stats.Sample {
	lat, _ := runFig10Stats(b, s, op)
	return lat
}

func runFig10Stats(b *testing.B, s cluster.Scenario, op fio.Op) (*stats.Sample, cluster.SimStats) {
	b.Helper()
	res, st, err := cluster.RunJobStats(s, cluster.ScenarioConfig{}, fio.JobSpec{
		Name: string(s), Op: op, MaxIOs: fig10IOs, WarmupIOs: 20,
		RangeBlocks: 1 << 16, Seed: 7,
	})
	if err != nil {
		b.Fatal(err)
	}
	if op == fio.RandWrite {
		return res.WriteLat, st
	}
	return res.ReadLat, st
}

// reportWallThroughput turns accumulated kernel event counts into the
// simulator's wall-clock performance numbers: events dispatched per real
// second and real nanoseconds spent per simulated I/O.
func reportWallThroughput(b *testing.B, events uint64, ios int) {
	sec := b.Elapsed().Seconds()
	if sec <= 0 {
		return
	}
	b.ReportMetric(float64(events)/sec, "events/sec")
	b.ReportMetric(b.Elapsed().Seconds()*1e9/float64(ios), "ns/IO")
}

func reportLatency(b *testing.B, lat *stats.Sample) {
	box := lat.Box()
	b.ReportMetric(box.Min/1000, "vmin_us")
	b.ReportMetric(box.Median/1000, "vmed_us")
	b.ReportMetric(box.P99/1000, "vp99_us")
	b.ReportMetric(box.Max/1000, "vmax_us")
}

// BenchmarkFig10Read regenerates Figure 10's four read boxplots: I/O
// command completion latency, random read 4 kB QD1, for linux-local,
// nvmeof-remote, ours-local and ours-remote.
func BenchmarkFig10Read(b *testing.B) {
	for _, s := range cluster.Scenarios() {
		b.Run(string(s), func(b *testing.B) {
			var lat *stats.Sample
			var events uint64
			for i := 0; i < b.N; i++ {
				var st cluster.SimStats
				lat, st = runFig10Stats(b, s, fio.RandRead)
				events += st.Events
			}
			reportLatency(b, lat)
			reportWallThroughput(b, events, b.N*fig10IOs)
		})
	}
}

// BenchmarkFig10Write regenerates Figure 10's four write boxplots.
func BenchmarkFig10Write(b *testing.B) {
	for _, s := range cluster.Scenarios() {
		b.Run(string(s), func(b *testing.B) {
			var lat *stats.Sample
			var events uint64
			for i := 0; i < b.N; i++ {
				var st cluster.SimStats
				lat, st = runFig10Stats(b, s, fio.RandWrite)
				events += st.Events
			}
			reportLatency(b, lat)
			reportWallThroughput(b, events, b.N*fig10IOs)
		})
	}
}

// BenchmarkMinLatencyDeltas regenerates the §VI text claims directly:
// minimum-latency differences (read: 7.7 us NVMe-oF vs ~1 us ours; write:
// 7.5 us vs ~2 us), reported as vdelta_us metrics.
func BenchmarkMinLatencyDeltas(b *testing.B) {
	type pair struct {
		name        string
		op          fio.Op
		base, other cluster.Scenario
	}
	pairs := []pair{
		{"read/nvmeof-vs-local", fio.RandRead, cluster.LinuxLocal, cluster.NVMeoFRemote},
		{"read/ours-remote-vs-local", fio.RandRead, cluster.OursLocal, cluster.OursRemote},
		{"write/nvmeof-vs-local", fio.RandWrite, cluster.LinuxLocal, cluster.NVMeoFRemote},
		{"write/ours-remote-vs-local", fio.RandWrite, cluster.OursLocal, cluster.OursRemote},
	}
	for _, pr := range pairs {
		b.Run(pr.name, func(b *testing.B) {
			var delta float64
			for i := 0; i < b.N; i++ {
				base := runFig10(b, pr.base, pr.op)
				other := runFig10(b, pr.other, pr.op)
				delta = (other.Min() - base.Min()) / 1000
			}
			b.ReportMetric(delta, "vdelta_us")
		})
	}
}

// BenchmarkQueuePlacement is the Figure 8 ablation: remote-client read
// latency with the SQ on the device host (preferred), on the client
// (controller fetches across the NTB with non-posted reads), or inside
// the controller memory buffer (internal fetch — beyond the paper).
func BenchmarkQueuePlacement(b *testing.B) {
	for _, placement := range []core.SQPlacement{core.SQDeviceSide, core.SQClientLocal, core.SQCMB} {
		b.Run(placement.String(), func(b *testing.B) {
			var lat *stats.Sample
			for i := 0; i < b.N; i++ {
				res, err := cluster.RunJob(cluster.OursRemote, cluster.ScenarioConfig{
					Client: core.ClientParams{Placement: placement},
					NVMe: cluster.NVMeConfig{
						Ctrl:  nvme.Params{CMBBytes: 16 << 10},
						Flash: nvme.FlashParams{JitterNs: 1, TailProb: 1e-12}},
				}, fio.JobSpec{
					Name: "placement", Op: fio.RandRead, MaxIOs: 300, WarmupIOs: 10,
					RangeBlocks: 1 << 16, Seed: 7,
				})
				if err != nil {
					b.Fatal(err)
				}
				lat = res.ReadLat
			}
			reportLatency(b, lat)
		})
	}
}

// BenchmarkBounceBuffer is the §V design-decision ablation: the static
// bounce buffer (one extra memcpy) versus reprogramming an NTB window
// per request (the rejected alternative, charged at the LUT programming
// cost).
func BenchmarkBounceBuffer(b *testing.B) {
	for _, mode := range []string{"static-bounce", "dynamic-remap"} {
		b.Run(mode, func(b *testing.B) {
			params := core.ClientParams{}
			if mode == "dynamic-remap" {
				params.RemapPerIO = true
			}
			var lat *stats.Sample
			for i := 0; i < b.N; i++ {
				res, err := cluster.RunJob(cluster.OursRemote, cluster.ScenarioConfig{
					Client: params,
					NVMe:   cluster.NVMeConfig{Flash: nvme.FlashParams{JitterNs: 1, TailProb: 1e-12}},
				}, fio.JobSpec{
					Name: mode, Op: fio.RandWrite, MaxIOs: 300, WarmupIOs: 10,
					RangeBlocks: 1 << 16, Seed: 7,
				})
				if err != nil {
					b.Fatal(err)
				}
				lat = res.WriteLat
			}
			reportLatency(b, lat)
		})
	}
}

// BenchmarkZeroCopyIOMMU sweeps transfer size for the §V future-work
// design (per-request IOMMU mapping) against the shipped bounce buffer:
// copying wins at 4 kB, mapping wins for large transfers.
func BenchmarkZeroCopyIOMMU(b *testing.B) {
	for _, mode := range []string{"bounce", "iommu-zerocopy"} {
		for _, kb := range []int{4, 16, 64, 128} {
			b.Run(fmt.Sprintf("%s/%dKiB", mode, kb), func(b *testing.B) {
				n := kb << 10
				var lat *stats.Sample
				for i := 0; i < b.N; i++ {
					res, err := cluster.RunJob(cluster.OursRemote, cluster.ScenarioConfig{
						Client: core.ClientParams{
							ZeroCopy:       mode == "iommu-zerocopy",
							PartitionBytes: 256 << 10,
						},
						Manager: core.ManagerParams{EnableIOMMU: mode == "iommu-zerocopy"},
						NVMe:    cluster.NVMeConfig{Flash: nvme.FlashParams{JitterNs: 1, TailProb: 1e-12}},
					}, fio.JobSpec{
						Name: mode, Op: fio.RandWrite, BlockSize: n,
						MaxIOs: 100, WarmupIOs: 5, RangeBlocks: 1 << 18, Seed: 7,
					})
					if err != nil {
						b.Fatal(err)
					}
					lat = res.WriteLat
				}
				reportLatency(b, lat)
			})
		}
	}
}

// BenchmarkSwitchHops regenerates the §VI claim that each switch chip in
// the path adds 100-150 ns per direction: QD1 read latency with k extra
// switch chips between the root complex and the device.
func BenchmarkSwitchHops(b *testing.B) {
	for _, hops := range []int{0, 1, 2, 4} {
		b.Run(fmt.Sprintf("chips-%d", hops), func(b *testing.B) {
			var lat *stats.Sample
			for i := 0; i < b.N; i++ {
				res, err := cluster.RunJob(cluster.LinuxLocal, cluster.ScenarioConfig{
					NVMe: cluster.NVMeConfig{ExtraSwitches: hops,
						Flash: nvme.FlashParams{JitterNs: 1, TailProb: 1e-12}},
				}, fio.JobSpec{
					Name: "hops", Op: fio.RandRead, MaxIOs: 200, WarmupIOs: 10,
					RangeBlocks: 1 << 16, Seed: 7,
				})
				if err != nil {
					b.Fatal(err)
				}
				lat = res.ReadLat
			}
			reportLatency(b, lat)
		})
	}
}

// BenchmarkQueueDepth sweeps queue depth on ours-remote (beyond the
// paper's QD1, which isolates network latency): throughput should rise
// with depth while per-I/O latency grows.
func BenchmarkQueueDepth(b *testing.B) {
	for _, qd := range []int{1, 2, 4, 8, 16, 32} {
		b.Run(fmt.Sprintf("qd-%d", qd), func(b *testing.B) {
			var res *fio.Result
			for i := 0; i < b.N; i++ {
				var err error
				res, err = cluster.RunJob(cluster.OursRemote, cluster.ScenarioConfig{},
					fio.JobSpec{
						Name: "qd", Op: fio.RandRead, QueueDepth: qd,
						MaxIOs: 500, WarmupIOs: 20, RangeBlocks: 1 << 16, Seed: 7,
					})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(res.IOPS(), "viops")
			b.ReportMetric(res.ReadLat.Median()/1000, "vmed_us")
		})
	}
}

// BenchmarkBandwidthParity reproduces the evaluation's premise ("by using
// modern networking technologies ... NVMe-oF using RDMA can provide very
// high throughput, which is comparable to that of local PCIe", §VI):
// at high queue depth all three stacks saturate the medium, so the
// latency difference — not bandwidth — is where the paper's benefit lies.
func BenchmarkBandwidthParity(b *testing.B) {
	for _, s := range []cluster.Scenario{cluster.LinuxLocal, cluster.NVMeoFRemote, cluster.OursRemote} {
		b.Run(string(s), func(b *testing.B) {
			var res *fio.Result
			for i := 0; i < b.N; i++ {
				var err error
				res, err = cluster.RunJob(s, cluster.ScenarioConfig{}, fio.JobSpec{
					Name: string(s), Op: fio.RandRead, QueueDepth: 32,
					MaxIOs: 2000, WarmupIOs: 50, RangeBlocks: 1 << 18, Seed: 7,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(res.IOPS(), "viops")
			b.ReportMetric(res.Bandwidth()/1e6, "vMBps")
		})
	}
}

// BenchmarkMultiHostScaling shares one controller among k simultaneous
// client hosts (the capability §VI validates with 31 hosts) and reports
// aggregate virtual IOPS.
func BenchmarkMultiHostScaling(b *testing.B) {
	for _, clients := range []int{1, 2, 4, 8, 16, 31} {
		b.Run(fmt.Sprintf("hosts-%d", clients), func(b *testing.B) {
			var aggregate float64
			for i := 0; i < b.N; i++ {
				aggregate = runMultiHost(b, clients)
			}
			b.ReportMetric(aggregate, "viops")
		})
	}
}

func runMultiHost(b *testing.B, clients int) float64 {
	b.Helper()
	c, err := cluster.New(cluster.Config{Hosts: clients + 1, MemBytes: 16 << 20, AdapterWindows: 1024})
	if err != nil {
		b.Fatal(err)
	}
	_, err = c.AttachNVMe(0, cluster.NVMeConfig{})
	if err != nil {
		b.Fatal(err)
	}
	svc := smartio.NewService(c.Dir)
	dev, err := svc.Register(0, "nvme0", pcie.Range{Base: cluster.NVMeBARBase, Size: cluster.NVMeBARSize})
	if err != nil {
		b.Fatal(err)
	}
	const iosPerClient = 100
	totalIOs := 0
	var elapsed sim.Duration
	c.Go("main", func(p *sim.Proc) {
		mgr, err := core.NewManager(p, svc, dev.ID, c.Hosts[0].Node, core.ManagerParams{})
		if err != nil {
			b.Error(err)
			return
		}
		start := p.Now()
		done := make([]*sim.Event, 0, clients)
		for i := 1; i <= clients; i++ {
			host := i
			fin := sim.NewEvent(c.K)
			done = append(done, fin)
			c.Go("client", func(cp *sim.Proc) {
				defer fin.Trigger(nil)
				cl, err := core.NewClient(cp, "cl", svc, c.Hosts[host].Node, mgr,
					core.ClientParams{QueueDepth: 8, PartitionBytes: 8192})
				if err != nil {
					b.Error(err)
					return
				}
				buf := make([]byte, 4096)
				for k := 0; k < iosPerClient; k++ {
					lba := uint64(host*100000 + k*8)
					if err := cl.ReadBlocks(cp, lba, 8, buf); err != nil {
						b.Error(err)
						return
					}
					totalIOs++
				}
			})
		}
		for _, fin := range done {
			p.Wait(fin)
		}
		elapsed = p.Now() - start
	})
	c.Run()
	if elapsed == 0 {
		return 0
	}
	return float64(totalIOs) / (float64(elapsed) / float64(sim.Second))
}
